//! A lightweight item-level parse layer over the token stream.
//!
//! The S-rules (see [`crate::rules`]) reason about *structure* — which
//! statics exist, what types pub items expose, what payload shape every
//! `Arc<..>` carries — so the lexer's flat token stream is not enough.
//! This module extracts a per-file item list: statics (including
//! function-local ones and `thread_local!` blocks), structs, enums, type
//! aliases, functions and their return types, with module nesting and
//! visibility tracked along the way.
//!
//! The parser is deliberately *total*: it never fails, never panics, and
//! skips anything it does not recognize (macros, expressions, attribute
//! bodies). A construct it skips simply contributes no items, which for a
//! lint means a missed check, never a crash or a false parse. Spans are
//! stable: every item carries the 1-based line of its defining token, so
//! prepending `k` blank lines to a file shifts every item line by exactly
//! `k` (the property test in `tests/parse_graph.rs` pins this).

use crate::lexer::{Tok, Token};

/// Visibility of an item, as the sharing rules care about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// No `pub` at all: private to the enclosing module.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in ..)`, `pub(self)`: visible
    /// within the crate but never across a crate boundary.
    Crate,
    /// Plain `pub`: exposed from the crate (modulo module privacy, which
    /// the analyzer approximates — see [`crate::rules`] S2).
    Pub,
}

impl Vis {
    /// Stable lowercase name for reports and the JSON certificate.
    pub fn name(self) -> &'static str {
        match self {
            Vis::Private => "private",
            Vis::Crate => "crate",
            Vis::Pub => "pub",
        }
    }
}

/// A type expression, summarized to what the rules need: the set of path
/// identifiers it mentions and every `Arc<..>` application inside it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TypeExpr {
    /// Every identifier appearing in the type, in source order.
    pub idents: Vec<String>,
    /// Every `Arc<payload>` application, with the payload's head type.
    pub arcs: Vec<ArcApp>,
}

impl TypeExpr {
    /// `true` if the type mentions `name` anywhere.
    pub fn mentions(&self, name: &str) -> bool {
        self.idents.iter().any(|i| i == name)
    }
}

/// One `Arc<payload>` application found in a type position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArcApp {
    /// 1-based line of the `Arc` token.
    pub line: u32,
    /// The head of the payload type: the last path segment for a named
    /// type (`Mutex` for `Arc<std::sync::Mutex<T>>`), `[..]` for slices
    /// and arrays, `(..)` for tuples, `dyn`/`impl` heads resolve to the
    /// trait name.
    pub head: String,
}

/// A struct field or enum-variant field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name (`"0"`, `"1"`, ... for tuple fields; for enum variants
    /// the name is `Variant.field`).
    pub name: String,
    /// Field visibility (enum-variant fields inherit the enum's).
    pub vis: Vis,
    /// 1-based line the field starts on.
    pub line: u32,
    /// The field's type.
    pub ty: TypeExpr,
}

/// What kind of item was parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `static NAME: TY = ..;` — `mutable` for `static mut`.
    Static {
        /// `true` for `static mut`.
        mutable: bool,
        /// The declared type.
        ty: TypeExpr,
    },
    /// A `static` inside a `thread_local! { .. }` block.
    ThreadLocal {
        /// The declared type.
        ty: TypeExpr,
    },
    /// `const NAME: TY = ..;`
    Const {
        /// The declared type.
        ty: TypeExpr,
    },
    /// `struct NAME { .. }` (or tuple/unit struct).
    Struct {
        /// Fields, tuple fields named by index.
        fields: Vec<Field>,
    },
    /// `enum NAME { .. }` — fields of all variants, flattened.
    Enum {
        /// Variant fields, named `Variant.field` / `Variant.0`.
        fields: Vec<Field>,
    },
    /// `type NAME = TY;`
    TypeAlias {
        /// The aliased type.
        ty: TypeExpr,
    },
    /// `fn NAME(..) -> RET` — only the return type is captured.
    Fn {
        /// The return type, if the signature declares one.
        ret: Option<TypeExpr>,
    },
}

impl ItemKind {
    /// Stable kind name for reports and the JSON certificate.
    pub fn name(&self) -> &'static str {
        match self {
            ItemKind::Static { .. } => "static",
            ItemKind::ThreadLocal { .. } => "thread_local",
            ItemKind::Const { .. } => "const",
            ItemKind::Struct { .. } => "struct",
            ItemKind::Enum { .. } => "enum",
            ItemKind::TypeAlias { .. } => "type",
            ItemKind::Fn { .. } => "fn",
        }
    }
}

/// One parsed item with its location and context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    /// 1-based line of the item's keyword token.
    pub line: u32,
    /// Inline-module path from the file root (empty at the root).
    pub module: Vec<String>,
    /// The item's declared visibility.
    pub vis: Vis,
    /// `true` if the item is nested inside a function body (a
    /// function-local `static`, for instance) — never externally
    /// reachable, but still global state.
    pub in_fn: bool,
    /// The item's name.
    pub name: String,
    /// What was parsed.
    pub kind: ItemKind,
}

/// A `match` statement whose arm patterns name one of the protected
/// enums and which also carries a top-level wildcard `_` arm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WildcardMatch {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// 1-based line of the offending `_` arm.
    pub wildcard_line: u32,
    /// Which protected enum the arm patterns named.
    pub enum_name: String,
}

/// Parses the whole file into an item list. Total: any input produces a
/// (possibly empty) item list; unrecognized constructs are skipped.
pub fn parse(tokens: &[Token]) -> Vec<Item> {
    let mut items = Vec::new();
    let mut p = Parser { toks: tokens, i: 0 };
    p.items(tokens.len(), &mut Vec::new(), false, &mut items);
    items
}

struct Parser<'t> {
    toks: &'t [Token],
    i: usize,
}

impl<'t> Parser<'t> {
    fn ident(&self, i: usize) -> Option<&'t str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// With `self.i` on an opening delimiter, returns the index just past
    /// its matching close (or `end` if unbalanced).
    fn past_balanced(&self, open: char, close: char, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = self.i;
        while j < end {
            match self.punct(j) {
                Some(c) if c == open => depth += 1,
                Some(c) if c == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Advances to the next `;` at bracket depth 0, or past a balanced
    /// `{..}` block, whichever comes first — the "skip one statement"
    /// fallback for items the parser does not model (`use`, macros).
    fn skip_statement(&mut self, end: usize) {
        let mut depth = 0usize;
        while self.i < end {
            match self.punct(self.i) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth = depth.saturating_sub(1),
                Some('{') if depth == 0 => {
                    self.i = self.past_balanced('{', '}', end);
                    return;
                }
                Some(';') if depth == 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Scans a type expression starting at `self.i`, stopping at any of
    /// `stop` puncts at all-brackets-depth 0 (or at `where` / end of
    /// scope). Leaves `self.i` on the terminator. Angle brackets are
    /// tracked, with `->` arrows exempt from closing them.
    fn scan_type(&mut self, stop: &[char], end: usize) -> TypeExpr {
        let mut ty = TypeExpr::default();
        let mut paren = 0usize;
        let mut angle = 0usize;
        let mut prev_dash = false;
        while self.i < end {
            let at_depth0 = paren == 0 && angle == 0;
            match &self.toks[self.i].tok {
                Tok::Punct(c) => {
                    let c = *c;
                    if at_depth0 && stop.contains(&c) {
                        return ty;
                    }
                    match c {
                        '(' | '[' | '{' => paren += 1,
                        ')' | ']' | '}' => {
                            if paren == 0 {
                                return ty; // closes an enclosing scope
                            }
                            paren -= 1;
                        }
                        '<' => angle += 1,
                        '>' if !prev_dash => angle = angle.saturating_sub(1),
                        _ => {}
                    }
                    prev_dash = c == '-';
                }
                Tok::Ident(s) => {
                    prev_dash = false;
                    if s == "where" && at_depth0 {
                        return ty;
                    }
                    if s == "Arc" && self.arc_open(self.i + 1).is_some() {
                        let open = self.arc_open(self.i + 1).unwrap_or(self.i + 1);
                        ty.arcs.push(ArcApp {
                            line: self.line(self.i),
                            head: self.arc_payload_head(open + 1, end),
                        });
                    }
                    ty.idents.push(s.clone());
                }
                _ => prev_dash = false,
            }
            self.i += 1;
        }
        ty
    }

    /// If the tokens at `i` open a generic application (`<`, or turbofish
    /// `::<`), returns the index of the `<`.
    fn arc_open(&self, i: usize) -> Option<usize> {
        if self.punct(i) == Some('<') {
            return Some(i);
        }
        if self.punct(i) == Some(':')
            && self.punct(i + 1) == Some(':')
            && self.punct(i + 2) == Some('<')
        {
            return Some(i + 2);
        }
        None
    }

    /// The head of the first generic argument starting at `i` (just past
    /// the `<`): last path segment of a named type, `[..]` for
    /// slices/arrays, `(..)` for tuples.
    fn arc_payload_head(&self, mut i: usize, end: usize) -> String {
        let mut head = String::new();
        while i < end {
            match &self.toks[i].tok {
                Tok::Punct('&') | Tok::Punct('*') => {}
                Tok::Punct('[') => return "[..]".to_string(),
                Tok::Punct('(') => return "(..)".to_string(),
                Tok::Punct(':') => {}
                Tok::Punct(_) => break,
                Tok::Ident(s) => {
                    if s != "dyn" && s != "impl" && s != "mut" && s != "const" {
                        head = s.clone();
                    }
                }
                _ => break,
            }
            i += 1;
        }
        head
    }

    /// Skips a balanced `<..>` generics list if one starts at `self.i`.
    fn skip_generics(&mut self, end: usize) {
        if self.punct(self.i) != Some('<') {
            return;
        }
        let mut angle = 0usize;
        let mut prev_dash = false;
        while self.i < end {
            match self.punct(self.i) {
                Some('<') => angle += 1,
                Some('>') if !prev_dash => {
                    angle -= 1;
                    if angle == 0 {
                        self.i += 1;
                        return;
                    }
                }
                _ => {}
            }
            prev_dash = self.punct(self.i) == Some('-');
            self.i += 1;
        }
    }

    /// Parses items in `[self.i, end)` at module scope (file root, inline
    /// `mod`, `impl`/`trait` bodies all behave the same here).
    fn items(&mut self, end: usize, module: &mut Vec<String>, in_fn: bool, out: &mut Vec<Item>) {
        let mut vis = Vis::Private;
        while self.i < end {
            match &self.toks[self.i].tok {
                Tok::Punct('#') => {
                    // `#[attr]` / `#![attr]`: skip to the bracket group.
                    self.i += 1;
                    if self.punct(self.i) == Some('!') {
                        self.i += 1;
                    }
                    if self.punct(self.i) == Some('[') {
                        self.i = self.past_balanced('[', ']', end);
                    }
                }
                Tok::Punct('{') => {
                    // A stray block at item scope: descend (still finds
                    // function-local statics in weird macro output).
                    self.i = self.past_balanced('{', '}', end);
                    vis = Vis::Private;
                }
                Tok::Punct(_) | Tok::Int | Tok::Float | Tok::Str => {
                    self.i += 1;
                }
                Tok::Ident(kw) => {
                    let kw = kw.clone();
                    self.keyword(&kw, end, module, in_fn, &mut vis, out);
                }
            }
        }
    }

    /// Handles one identifier at item scope; updates `vis` or emits items.
    fn keyword(
        &mut self,
        kw: &str,
        end: usize,
        module: &mut Vec<String>,
        in_fn: bool,
        vis: &mut Vis,
        out: &mut Vec<Item>,
    ) {
        match kw {
            "pub" => {
                self.i += 1;
                *vis = if self.punct(self.i) == Some('(') {
                    self.i = self.past_balanced('(', ')', end);
                    Vis::Crate
                } else {
                    Vis::Pub
                };
            }
            // Modifiers that may precede `fn`/`impl`/`trait`.
            "unsafe" | "async" | "extern" | "default" => {
                self.i += 1;
                if matches!(self.toks.get(self.i).map(|t| &t.tok), Some(Tok::Str)) {
                    self.i += 1; // the ABI string of `extern "C"`
                }
            }
            "mod" => {
                self.i += 1;
                let name = self.ident(self.i).unwrap_or("").to_string();
                self.i += 1;
                if self.punct(self.i) == Some('{') {
                    let body_end = self.past_balanced('{', '}', end);
                    self.i += 1;
                    module.push(name);
                    self.items(body_end.saturating_sub(1), module, in_fn, out);
                    module.pop();
                    self.i = body_end;
                }
                // `mod name;` needs nothing: the referenced file is
                // walked and parsed on its own.
                *vis = Vis::Private;
            }
            "static" => {
                self.static_item(end, module, in_fn, *vis, false, out);
                *vis = Vis::Private;
            }
            "thread_local" => {
                self.i += 1;
                if self.punct(self.i) == Some('!') {
                    self.i += 1;
                    if self.punct(self.i) == Some('{') {
                        let body_end = self.past_balanced('{', '}', end);
                        self.i += 1;
                        self.thread_local_body(
                            body_end.saturating_sub(1),
                            module,
                            in_fn,
                            *vis,
                            out,
                        );
                        self.i = body_end;
                    }
                }
                *vis = Vis::Private;
            }
            "const" => {
                // `const fn` is a function; `const NAME: TY = ..;` an item.
                if self.ident(self.i + 1) == Some("fn") {
                    self.i += 1;
                    return;
                }
                let line = self.line(self.i);
                self.i += 1;
                let name = self.ident(self.i).unwrap_or("").to_string();
                self.i += 1;
                if self.punct(self.i) == Some(':') {
                    self.i += 1;
                    let ty = self.scan_type(&['=', ';'], end);
                    out.push(Item {
                        line,
                        module: module.clone(),
                        vis: *vis,
                        in_fn,
                        name,
                        kind: ItemKind::Const { ty },
                    });
                }
                self.skip_statement(end);
                *vis = Vis::Private;
            }
            "type" => {
                let line = self.line(self.i);
                self.i += 1;
                let name = self.ident(self.i).unwrap_or("").to_string();
                self.i += 1;
                self.skip_generics(end);
                if self.punct(self.i) == Some('=') {
                    self.i += 1;
                    let ty = self.scan_type(&[';'], end);
                    out.push(Item {
                        line,
                        module: module.clone(),
                        vis: *vis,
                        in_fn,
                        name,
                        kind: ItemKind::TypeAlias { ty },
                    });
                }
                self.skip_statement(end);
                *vis = Vis::Private;
            }
            "struct" => {
                self.struct_item(end, module, in_fn, *vis, out);
                *vis = Vis::Private;
            }
            "enum" => {
                self.enum_item(end, module, in_fn, *vis, out);
                *vis = Vis::Private;
            }
            "fn" => {
                self.fn_item(end, module, in_fn, *vis, out);
                *vis = Vis::Private;
            }
            "impl" | "trait" => {
                // Skip the header (generics, self type, bounds) up to the
                // body, then parse the body at item scope.
                self.i += 1;
                while self.i < end
                    && self.punct(self.i) != Some('{')
                    && self.punct(self.i) != Some(';')
                {
                    self.i += 1;
                }
                if self.punct(self.i) == Some('{') {
                    let body_end = self.past_balanced('{', '}', end);
                    self.i += 1;
                    self.items(body_end.saturating_sub(1), module, in_fn, out);
                    self.i = body_end;
                } else {
                    self.i += 1;
                }
                *vis = Vis::Private;
            }
            "use" | "macro_rules" | "macro" => {
                self.skip_statement(end);
                *vis = Vis::Private;
            }
            _ => {
                self.i += 1;
                *vis = Vis::Private;
            }
        }
    }

    /// `static [mut] NAME: TY = ..;` with `self.i` on `static`.
    fn static_item(
        &mut self,
        end: usize,
        module: &[String],
        in_fn: bool,
        vis: Vis,
        thread_local: bool,
        out: &mut Vec<Item>,
    ) {
        let line = self.line(self.i);
        self.i += 1;
        let mut mutable = false;
        if self.ident(self.i) == Some("mut") {
            mutable = true;
            self.i += 1;
        }
        let name = self.ident(self.i).unwrap_or("").to_string();
        self.i += 1;
        if self.punct(self.i) == Some(':') {
            self.i += 1;
            let ty = self.scan_type(&['=', ';'], end);
            let kind = if thread_local {
                ItemKind::ThreadLocal { ty }
            } else {
                ItemKind::Static { mutable, ty }
            };
            out.push(Item { line, module: module.to_vec(), vis, in_fn, name, kind });
        }
        self.skip_statement(end);
    }

    /// The inside of a `thread_local! { .. }` block: a run of statics.
    fn thread_local_body(
        &mut self,
        end: usize,
        module: &[String],
        in_fn: bool,
        vis: Vis,
        out: &mut Vec<Item>,
    ) {
        let mut item_vis = vis;
        while self.i < end {
            match self.ident(self.i) {
                Some("static") => {
                    self.static_item(end, module, in_fn, item_vis, true, out);
                    item_vis = vis;
                }
                Some("pub") => {
                    self.i += 1;
                    item_vis = if self.punct(self.i) == Some('(') {
                        self.i = self.past_balanced('(', ')', end);
                        Vis::Crate
                    } else {
                        Vis::Pub
                    };
                }
                _ => self.i += 1,
            }
        }
    }

    /// `struct NAME .. ;|(..)|{..}` with `self.i` on `struct`.
    fn struct_item(
        &mut self,
        end: usize,
        module: &[String],
        in_fn: bool,
        vis: Vis,
        out: &mut Vec<Item>,
    ) {
        let line = self.line(self.i);
        self.i += 1;
        let name = self.ident(self.i).unwrap_or("").to_string();
        self.i += 1;
        self.skip_generics(end);
        // Skip a `where` clause if present (scan to the body/terminator).
        while self.i < end
            && self.punct(self.i) != Some('{')
            && self.punct(self.i) != Some('(')
            && self.punct(self.i) != Some(';')
        {
            self.i += 1;
        }
        let mut fields = Vec::new();
        match self.punct(self.i) {
            Some('(') => {
                let body_end = self.past_balanced('(', ')', end);
                self.i += 1;
                self.tuple_fields(body_end.saturating_sub(1), "", &mut fields);
                self.i = body_end;
                self.skip_statement(end); // the trailing `;`
            }
            Some('{') => {
                let body_end = self.past_balanced('{', '}', end);
                self.i += 1;
                self.named_fields(body_end.saturating_sub(1), "", &mut fields);
                self.i = body_end;
            }
            _ => self.i += 1, // unit struct `;`
        }
        out.push(Item {
            line,
            module: module.to_vec(),
            vis,
            in_fn,
            name,
            kind: ItemKind::Struct { fields },
        });
    }

    /// Named fields `vis name: TY,` in `[self.i, end)`.
    fn named_fields(&mut self, end: usize, prefix: &str, out: &mut Vec<Field>) {
        while self.i < end {
            match &self.toks[self.i].tok {
                Tok::Punct('#') => {
                    self.i += 1;
                    if self.punct(self.i) == Some('[') {
                        self.i = self.past_balanced('[', ']', end);
                    }
                }
                Tok::Ident(_) => {
                    let mut vis = Vis::Private;
                    if self.ident(self.i) == Some("pub") {
                        self.i += 1;
                        vis = if self.punct(self.i) == Some('(') {
                            self.i = self.past_balanced('(', ')', end);
                            Vis::Crate
                        } else {
                            Vis::Pub
                        };
                    }
                    let line = self.line(self.i);
                    let name = self.ident(self.i).unwrap_or("").to_string();
                    self.i += 1;
                    if self.punct(self.i) == Some(':') {
                        self.i += 1;
                        let ty = self.scan_type(&[','], end);
                        out.push(Field { name: format!("{prefix}{name}"), vis, line, ty });
                    }
                    if self.punct(self.i) == Some(',') {
                        self.i += 1;
                    }
                }
                _ => self.i += 1,
            }
        }
    }

    /// Tuple fields `vis TY,` in `[self.i, end)`, named by index.
    fn tuple_fields(&mut self, end: usize, prefix: &str, out: &mut Vec<Field>) {
        let mut idx = 0usize;
        while self.i < end {
            if self.punct(self.i) == Some('#') {
                self.i += 1;
                if self.punct(self.i) == Some('[') {
                    self.i = self.past_balanced('[', ']', end);
                }
                continue;
            }
            let mut vis = Vis::Private;
            if self.ident(self.i) == Some("pub") {
                self.i += 1;
                vis = if self.punct(self.i) == Some('(') {
                    self.i = self.past_balanced('(', ')', end);
                    Vis::Crate
                } else {
                    Vis::Pub
                };
            }
            let line = self.line(self.i);
            let ty = self.scan_type(&[','], end);
            if !ty.idents.is_empty() || !ty.arcs.is_empty() {
                out.push(Field { name: format!("{prefix}{idx}"), vis, line, ty });
            }
            idx += 1;
            if self.punct(self.i) == Some(',') || self.i < end {
                self.i += 1;
            }
        }
    }

    /// `enum NAME { Variant{..} | Variant(..) | Variant, .. }`.
    fn enum_item(
        &mut self,
        end: usize,
        module: &[String],
        in_fn: bool,
        vis: Vis,
        out: &mut Vec<Item>,
    ) {
        let line = self.line(self.i);
        self.i += 1;
        let name = self.ident(self.i).unwrap_or("").to_string();
        self.i += 1;
        self.skip_generics(end);
        while self.i < end && self.punct(self.i) != Some('{') && self.punct(self.i) != Some(';') {
            self.i += 1;
        }
        let mut fields = Vec::new();
        if self.punct(self.i) == Some('{') {
            let body_end = self.past_balanced('{', '}', end);
            self.i += 1;
            while self.i < body_end.saturating_sub(1) {
                match &self.toks[self.i].tok {
                    Tok::Punct('#') => {
                        self.i += 1;
                        if self.punct(self.i) == Some('[') {
                            self.i = self.past_balanced('[', ']', body_end);
                        }
                    }
                    Tok::Ident(v) => {
                        let variant = v.clone();
                        self.i += 1;
                        match self.punct(self.i) {
                            Some('{') => {
                                let vend = self.past_balanced('{', '}', body_end);
                                self.i += 1;
                                self.named_fields(
                                    vend.saturating_sub(1),
                                    &format!("{variant}."),
                                    &mut fields,
                                );
                                self.i = vend;
                            }
                            Some('(') => {
                                let vend = self.past_balanced('(', ')', body_end);
                                self.i += 1;
                                self.tuple_fields(
                                    vend.saturating_sub(1),
                                    &format!("{variant}."),
                                    &mut fields,
                                );
                                self.i = vend;
                            }
                            _ => {}
                        }
                        // Skip a discriminant (`= 3`) and the comma.
                        while self.i < body_end.saturating_sub(1) && self.punct(self.i) != Some(',')
                        {
                            self.i += 1;
                        }
                        if self.punct(self.i) == Some(',') {
                            self.i += 1;
                        }
                    }
                    _ => self.i += 1,
                }
            }
            self.i = body_end;
        }
        out.push(Item {
            line,
            module: module.to_vec(),
            vis,
            in_fn,
            name,
            kind: ItemKind::Enum { fields },
        });
    }

    /// `fn NAME(..) [-> RET] {body}|;` — captures the return type, then
    /// descends into the body looking only for nested items (statics).
    fn fn_item(
        &mut self,
        end: usize,
        module: &mut Vec<String>,
        _in_fn: bool,
        vis: Vis,
        out: &mut Vec<Item>,
    ) {
        let line = self.line(self.i);
        self.i += 1;
        let name = self.ident(self.i).unwrap_or("").to_string();
        self.i += 1;
        self.skip_generics(end);
        if self.punct(self.i) == Some('(') {
            self.i = self.past_balanced('(', ')', end);
        }
        let mut ret = None;
        if self.punct(self.i) == Some('-') && self.punct(self.i + 1) == Some('>') {
            self.i += 2;
            ret = Some(self.scan_type(&['{', ';'], end));
        }
        // A `where` clause may sit between the return type and the body.
        while self.i < end && self.punct(self.i) != Some('{') && self.punct(self.i) != Some(';') {
            self.i += 1;
        }
        out.push(Item {
            line,
            module: module.clone(),
            vis,
            in_fn: _in_fn,
            name: name.clone(),
            kind: ItemKind::Fn { ret },
        });
        if self.punct(self.i) == Some('{') {
            let body_end = self.past_balanced('{', '}', end);
            self.i += 1;
            module.push(format!("fn {name}"));
            self.fn_body(body_end.saturating_sub(1), module, out);
            module.pop();
            self.i = body_end;
        } else {
            self.i += 1;
        }
    }

    /// Inside a function body only nested global state matters: scan for
    /// `static` declarations and `thread_local!` blocks, skipping every
    /// expression.
    fn fn_body(&mut self, end: usize, module: &[String], out: &mut Vec<Item>) {
        while self.i < end {
            match self.ident(self.i) {
                Some("static") => {
                    self.static_item(end, module, true, Vis::Private, false, out);
                }
                Some("thread_local") if self.punct(self.i + 1) == Some('!') => {
                    self.i += 2;
                    if self.punct(self.i) == Some('{') {
                        let body_end = self.past_balanced('{', '}', end);
                        self.i += 1;
                        self.thread_local_body(
                            body_end.saturating_sub(1),
                            module,
                            true,
                            Vis::Private,
                            out,
                        );
                        self.i = body_end;
                    }
                }
                _ => self.i += 1,
            }
        }
    }
}

/// Scans for `match` expressions whose arm *patterns* name one of
/// `protected` (via `Enum::Variant` paths) while also carrying a
/// top-level wildcard `_` arm. Nested matches are scanned independently;
/// wildcard arms of inner matches never count against an outer one.
pub fn wildcard_protected_matches(tokens: &[Token], protected: &[&str]) -> Vec<WildcardMatch> {
    let mut found = Vec::new();
    for (m, t) in tokens.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(s) if s == "match") {
            continue;
        }
        // Find the body `{`: first `{` at bracket depth 0 after the
        // scrutinee (closure bodies inside call arguments sit at
        // depth > 0 and are skipped correctly).
        let mut j = m + 1;
        let mut depth = 0usize;
        let mut body_open = None;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth = depth.saturating_sub(1),
                Tok::Punct('{') if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            continue;
        };
        let mut names = Vec::new();
        let mut wildcard_line = None;
        scan_match_body(tokens, open, protected, &mut names, &mut wildcard_line);
        if let (Some(first), Some(wline)) = (names.first(), wildcard_line) {
            found.push(WildcardMatch {
                line: t.line,
                wildcard_line: wline,
                enum_name: first.clone(),
            });
        }
    }
    found
}

/// Walks one match body (starting on its `{`), collecting protected-enum
/// names from top-level arm patterns and the line of any top-level `_`
/// wildcard arm.
fn scan_match_body(
    tokens: &[Token],
    open: usize,
    protected: &[&str],
    names: &mut Vec<String>,
    wildcard_line: &mut Option<u32>,
) {
    let mut depth = 0usize;
    let mut in_pattern = true;
    let mut pattern: Vec<usize> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return; // end of the match body
                }
                // An arm body block just closed: the next token starts a
                // new pattern.
                if depth == 1 && matches!(tokens[j].tok, Tok::Punct('}')) && !in_pattern {
                    in_pattern = true;
                    pattern.clear();
                }
                j += 1;
                continue;
            }
            Tok::Punct('=')
                if depth == 1
                    && in_pattern
                    && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('>'))) =>
            {
                // `=>`: the pattern is complete — classify it.
                classify_pattern(tokens, &pattern, protected, names, wildcard_line);
                in_pattern = false;
                pattern.clear();
                j += 2;
                continue;
            }
            Tok::Punct(',') if depth == 1 => {
                if !in_pattern {
                    in_pattern = true;
                    pattern.clear();
                }
                j += 1;
                continue;
            }
            _ => {}
        }
        if in_pattern && depth >= 1 {
            pattern.push(j);
        }
        j += 1;
    }
}

/// Decides what one completed arm pattern contributes: a protected-enum
/// reference (`Enum ::` anywhere in it) and/or a top-level wildcard (the
/// pattern is `_`, or `_ if guard`).
fn classify_pattern(
    tokens: &[Token],
    pattern: &[usize],
    protected: &[&str],
    names: &mut Vec<String>,
    wildcard_line: &mut Option<u32>,
) {
    // Leading `|` alternation markers do not change the shape.
    let mut idx = 0usize;
    while idx < pattern.len() && matches!(tokens[pattern[idx]].tok, Tok::Punct('|')) {
        idx += 1;
    }
    let trimmed = &pattern[idx..];
    if let Some(&first) = trimmed.first() {
        let lone = trimmed.len() == 1;
        let guarded = matches!(tokens.get(trimmed.get(1).copied().unwrap_or(usize::MAX)).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "if");
        if matches!(&tokens[first].tok, Tok::Ident(s) if s == "_") && (lone || guarded) {
            wildcard_line.get_or_insert(tokens[first].line);
        }
    }
    for (k, &p) in pattern.iter().enumerate() {
        if let Tok::Ident(s) = &tokens[p].tok {
            if protected.contains(&s.as_str())
                && pattern.get(k + 1).is_some_and(|&n| matches!(tokens[n].tok, Tok::Punct(':')))
                && pattern.get(k + 2).is_some_and(|&n| matches!(tokens[n].tok, Tok::Punct(':')))
                && !names.iter().any(|n| n == s)
            {
                names.push(s.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> Vec<Item> {
        parse(&lex(src).tokens)
    }

    #[test]
    fn statics_with_mutability_and_function_locals() {
        let src = "static A: u64 = 0;\n\
                   static mut B: u64 = 0;\n\
                   fn f() { static C: OnceLock<Arc<[u8]>> = OnceLock::new(); }\n";
        let items = items_of(src);
        let statics: Vec<_> =
            items.iter().filter(|i| matches!(i.kind, ItemKind::Static { .. })).collect();
        assert_eq!(statics.len(), 3);
        assert_eq!(statics[0].name, "A");
        assert!(matches!(statics[1].kind, ItemKind::Static { mutable: true, .. }));
        assert!(statics[2].in_fn);
        assert_eq!(statics[2].line, 3);
        let ItemKind::Static { ty, .. } = &statics[2].kind else {
            panic!("C is a static");
        };
        assert!(ty.mentions("OnceLock"));
        assert_eq!(ty.arcs.len(), 1);
        assert_eq!(ty.arcs[0].head, "[..]");
    }

    #[test]
    fn thread_local_blocks() {
        let items = items_of("thread_local! {\n  static TL: RefCell<u64> = RefCell::new(0);\n}\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "TL");
        assert!(matches!(&items[0].kind, ItemKind::ThreadLocal { ty } if ty.mentions("RefCell")));
    }

    #[test]
    fn struct_fields_with_visibility_and_modules() {
        let src = "pub mod outer {\n\
                     pub struct S {\n\
                       pub shared: Arc<Mutex<u64>>,\n\
                       private: u32,\n\
                       pub(crate) mid: Cell<u8>,\n\
                     }\n\
                   }\n";
        let items = items_of(src);
        let s = items.iter().find(|i| i.name == "S").expect("struct parsed");
        assert_eq!(s.module, vec!["outer"]);
        assert_eq!(s.vis, Vis::Pub);
        let ItemKind::Struct { fields } = &s.kind else { panic!("S is a struct") };
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].vis, Vis::Pub);
        assert_eq!(fields[0].ty.arcs, vec![ArcApp { line: 3, head: "Mutex".into() }]);
        assert_eq!(fields[1].vis, Vis::Private);
        assert_eq!(fields[2].vis, Vis::Crate);
        assert!(fields[2].ty.mentions("Cell"));
    }

    #[test]
    fn enums_tuples_and_aliases() {
        let src = "pub enum E { A { inner: Arc<AtomicU64> }, B(RefCell<u8>), C }\n\
                   pub type Alias = Arc<Mutex<Vec<u8>>>;\n\
                   pub struct T(pub Arc<[u8]>, u64);\n";
        let items = items_of(src);
        let e = items.iter().find(|i| i.name == "E").expect("enum parsed");
        let ItemKind::Enum { fields } = &e.kind else { panic!("E is an enum") };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "A.inner");
        assert_eq!(fields[0].ty.arcs[0].head, "AtomicU64");
        assert_eq!(fields[1].name, "B.0");
        let alias = items.iter().find(|i| i.name == "Alias").expect("alias parsed");
        assert!(matches!(&alias.kind, ItemKind::TypeAlias { ty } if ty.arcs[0].head == "Mutex"));
        let t = items.iter().find(|i| i.name == "T").expect("tuple struct parsed");
        let ItemKind::Struct { fields } = &t.kind else { panic!("T is a struct") };
        assert_eq!(fields[0].ty.arcs[0].head, "[..]");
        assert_eq!(fields[0].vis, Vis::Pub);
    }

    #[test]
    fn fn_return_types_and_impl_bodies() {
        let src = "impl Foo {\n\
                     pub fn cell(&self) -> &RefCell<u64> { &self.c }\n\
                     fn plain(&self) -> u64 { 0 }\n\
                   }\n";
        let items = items_of(src);
        let cell = items.iter().find(|i| i.name == "cell").expect("method parsed");
        assert_eq!(cell.vis, Vis::Pub);
        assert!(
            matches!(&cell.kind, ItemKind::Fn { ret: Some(ty) } if ty.mentions("RefCell")),
            "{cell:?}"
        );
    }

    #[test]
    fn generic_commas_do_not_split_fields() {
        let src = "struct M { map: BTreeMap<Pid, Entry>, next: u64 }\n";
        let items = items_of(src);
        let ItemKind::Struct { fields } = &items[0].kind else { panic!() };
        assert_eq!(fields.len(), 2, "{fields:?}");
        assert!(fields[0].ty.mentions("Entry"));
        assert_eq!(fields[1].name, "next");
    }

    #[test]
    fn wildcard_match_detection() {
        let src = "fn f(k: TraceKind) -> u32 {\n\
                     match k {\n\
                       TraceKind::A { pid } => pid,\n\
                       _ => 0,\n\
                     }\n\
                   }\n";
        let hits = wildcard_protected_matches(&lex(src).tokens, &["TraceKind"]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].wildcard_line, 4);
        assert_eq!(hits[0].enum_name, "TraceKind");
    }

    #[test]
    fn exhaustive_and_unprotected_matches_pass() {
        // Exhaustive over the protected enum: fine.
        let a = "match k { TraceKind::A => 1, TraceKind::B => 2 }";
        assert!(wildcard_protected_matches(&lex(a).tokens, &["TraceKind"]).is_empty());
        // Wildcard over an unprotected scrutinee: fine.
        let b = "match n { 0 => 1, _ => 2 }";
        assert!(wildcard_protected_matches(&lex(b).tokens, &["TraceKind"]).is_empty());
        // `Some(_)` is not a top-level wildcard.
        let c = "match k { Some(TraceKind::A) => 1, Some(_) => 2, None => 3 }";
        assert!(wildcard_protected_matches(&lex(c).tokens, &["TraceKind"]).is_empty());
    }

    #[test]
    fn nested_wildcards_do_not_leak_into_outer_matches() {
        // The outer match is exhaustive over PlanKind; the nested match
        // over an integer draw has a legitimate wildcard.
        let src = "match kind {\n\
                     PlanKind::A => (0..n).map(|_| match r(4) {\n\
                       0 => FaultEvent::Drop { at },\n\
                       _ => FaultEvent::Delay { at },\n\
                     }).collect(),\n\
                     PlanKind::B => vec![],\n\
                   }";
        let hits = wildcard_protected_matches(&lex(src).tokens, &["PlanKind", "FaultEvent"]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn guarded_wildcard_is_still_a_wildcard() {
        let src = "match k { TraceKind::A => 1, _ if lenient => 2, TraceKind::B => 3 }";
        let hits = wildcard_protected_matches(&lex(src).tokens, &["TraceKind"]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn parser_is_total_on_garbage() {
        for src in ["struct", "static X:", "match {", "pub pub pub", "fn f( {", "enum E { A("] {
            let _ = parse(&lex(src).tokens); // must not panic
        }
    }
}
