//! Workspace discovery: which `.rs` files exist and how each is classed.

use std::path::{Path, PathBuf};

use crate::rules::CrateClass;

/// Crate directory names (under `crates/`) whose `src/` trees must be
/// deterministic. Everything else — benchmarks, tests, examples, vendored
/// stubs, and this tool — is host-side.
pub const DET_CRATES: &[&str] = &["sim", "bus", "vm", "kernel", "pager", "fs", "core", "baseline"];

/// Directory names never descended into. `fixtures` holds this tool's own
/// deliberately-violating test inputs.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Classifies a workspace-relative path.
///
/// Deterministic: `crates/<det-crate>/src/**`. Host: everything else,
/// including the det crates' own `tests/` directories and `#[cfg(test)]`
/// modules (the latter handled by the rule engine, not the path).
pub fn classify(rel: &Path) -> CrateClass {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    match comps.as_slice() {
        ["crates", name, "src", ..] if DET_CRATES.contains(name) => CrateClass::Deterministic,
        _ => CrateClass::Host,
    }
}

/// Recursively collects every `.rs` file under `root`, sorted for
/// deterministic reporting, skipping [`SKIP_DIRS`].
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Walks up from `start` to find the workspace root: the nearest ancestor
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_src_trees_are_deterministic() {
        assert_eq!(classify(Path::new("crates/kernel/src/crash.rs")), CrateClass::Deterministic);
        assert_eq!(classify(Path::new("crates/core/src/chaos.rs")), CrateClass::Deterministic);
    }

    #[test]
    fn everything_else_is_host() {
        for p in [
            "crates/bench/src/lib.rs",
            "crates/lint/src/main.rs",
            "crates/kernel/tests/world_direct.rs",
            "tests/chaos.rs",
            "examples/quickstart.rs",
            "vendor/criterion/src/lib.rs",
        ] {
            assert_eq!(classify(Path::new(p)), CrateClass::Host, "{p}");
        }
    }

    /// The threaded slice runner lives host-side by design (rule H1):
    /// its `std::thread`/`mpsc` use is legal exactly because the path
    /// classifier keeps it out of the deterministic zone.
    #[test]
    fn slice_executor_crate_is_host() {
        assert_eq!(classify(Path::new("crates/par/src/lib.rs")), CrateClass::Host);
        assert!(!DET_CRATES.contains(&"par"), "adding `par` to DET_CRATES violates H1");
    }
}
