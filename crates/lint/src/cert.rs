//! The machine-readable parallel-safety certificate.
//!
//! `auros-lint --format json` (and `--certificate PATH`) serializes the
//! workspace analysis — the per-crate shared-symbol census from
//! [`crate::graph`], every surviving violation, and every waiver with its
//! recorded reason — as a single JSON document with schema
//! `auros-parallel-safety/v1`. The future parallel-executor PR (ROADMAP
//! item 2) consumes it as a precondition: `certified` is `true` exactly
//! when zero unwaived diagnostics remain, i.e. when the sharing boundary
//! the S-rules police is intact.
//!
//! The document is a pure function of the source tree: keys are emitted
//! in sorted order, lists are pre-sorted, and nothing timestamp- or
//! environment-dependent is included, so two runs over the same checkout
//! produce byte-identical output (a property the self-tests pin).

use std::fmt::Write as _;

use crate::graph::SymbolGraph;
use crate::rules::RULES;
use crate::WorkspaceReport;

/// Schema identifier stamped into every certificate.
pub const SCHEMA: &str = "auros-parallel-safety/v1";

/// Renders the certificate for a finished workspace report. The output
/// ends with a newline so the committed file is POSIX-friendly.
pub fn render(report: &WorkspaceReport) -> String {
    let mut w = Json::new();
    w.open_obj();
    w.key("schema").str(SCHEMA);
    w.key("certified").bool(report.diagnostics.is_empty());
    w.key("files").num(report.files as u64);
    w.key("det_files").num(report.det_files as u64);

    w.key("protected_enums").open_arr();
    for e in crate::graph::protected_enums() {
        w.elem().str(e);
    }
    w.close_arr();

    w.key("crates");
    render_crates(&mut w, &report.graph);

    w.key("rules").open_obj();
    for rule in RULES {
        let violations = report.diagnostics.iter().filter(|d| d.rule == rule.id).count();
        let waived = report.waived.iter().filter(|x| x.rule == rule.id).count();
        w.key(rule.id).open_obj();
        w.key("violations").num(violations as u64);
        w.key("waived").num(waived as u64);
        w.close_obj();
    }
    w.close_obj();

    w.key("violations").open_arr();
    for d in &report.diagnostics {
        w.elem().open_obj();
        w.key("file").str(&d.file);
        w.key("line").num(d.line as u64);
        w.key("rule").str(d.rule);
        w.key("message").str(&d.message);
        w.close_obj();
    }
    w.close_arr();

    w.key("waivers").open_arr();
    for x in &report.waived {
        w.elem().open_obj();
        w.key("file").str(&x.file);
        w.key("line").num(x.line as u64);
        w.key("rule").str(x.rule);
        w.key("reason").str(&x.reason);
        w.close_obj();
    }
    w.close_arr();

    w.close_obj();
    w.finish()
}

fn render_crates(w: &mut Json, graph: &SymbolGraph) {
    w.open_obj();
    for (name, census) in &graph.crates {
        w.key(name).open_obj();
        for (field, list) in [
            ("statics", &census.statics),
            ("thread_locals", &census.thread_locals),
            ("interior_mut_types", &census.interior_mut_types),
            ("pub_exposures", &census.pub_exposures),
        ] {
            w.key(field).open_arr();
            for s in list {
                w.elem().open_obj();
                w.key("name").str(&s.name);
                w.key("file").str(&s.file);
                w.key("line").num(s.line as u64);
                w.key("note").str(&s.note);
                w.close_obj();
            }
            w.close_arr();
        }
        w.key("arc_payloads").open_obj();
        for (head, count) in &census.arc_payloads {
            w.key(head).num(*count as u64);
        }
        w.close_obj();
        w.close_obj();
    }
    w.close_obj();
}

/// A minimal pretty-printing JSON writer. No serde: the build environment
/// is offline and the document is small; a 100-line emitter whose output
/// order we fully control is simpler than a dependency.
struct Json {
    out: String,
    indent: usize,
    /// `true` when the next key/element needs a `,` separator first.
    needs_comma: bool,
}

impl Json {
    fn new() -> Json {
        Json { out: String::new(), indent: 0, needs_comma: false }
    }

    fn newline(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.needs_comma = false;
    }

    fn key(&mut self, k: &str) -> &mut Json {
        self.newline();
        escape_into(&mut self.out, k);
        self.out.push_str(": ");
        self
    }

    /// Positions for the next array element (separator + indent only).
    fn elem(&mut self) -> &mut Json {
        self.newline();
        self
    }

    fn str(&mut self, v: &str) {
        escape_into(&mut self.out, v);
        self.needs_comma = true;
    }

    fn num(&mut self, v: u64) {
        let _ = write!(self.out, "{v}");
        self.needs_comma = true;
    }

    fn bool(&mut self, v: bool) {
        let _ = write!(self.out, "{v}");
        self.needs_comma = true;
    }

    fn open_obj(&mut self) -> &mut Json {
        self.out.push('{');
        self.indent += 1;
        self.needs_comma = false;
        self
    }

    fn close_obj(&mut self) {
        self.indent -= 1;
        self.needs_comma = false;
        self.newline();
        self.out.push('}');
        self.needs_comma = true;
    }

    fn open_arr(&mut self) -> &mut Json {
        self.out.push('[');
        self.indent += 1;
        self.needs_comma = false;
        self
    }

    fn close_arr(&mut self) {
        self.indent -= 1;
        self.needs_comma = false;
        self.newline();
        self.out.push(']');
        self.needs_comma = true;
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// Appends `s` as a JSON string literal (quotes included).
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}e");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn empty_report_renders_valid_skeleton() {
        let report = WorkspaceReport::default();
        let doc = render(&report);
        assert!(doc.starts_with('{'));
        assert!(doc.ends_with("}\n"));
        assert!(doc.contains("\"schema\": \"auros-parallel-safety/v1\""));
        assert!(doc.contains("\"certified\": true"));
        // Every rule gets a counts entry even when silent.
        for rule in RULES {
            assert!(doc.contains(&format!("\"{}\": {{", rule.id)), "{}", rule.id);
        }
    }

    #[test]
    fn render_is_deterministic() {
        let report = WorkspaceReport::default();
        assert_eq!(render(&report), render(&report));
    }
}
