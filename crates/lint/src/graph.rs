//! The symbol graph behind the parallel-safety rules (S1–S4).
//!
//! ROADMAP item 2 (deterministic parallel execution) rests on one claim:
//! clusters interact *only* through the bus (§5.1), so worker threads
//! owning disjoint cluster sets cannot race. This module turns that claim
//! from folklore into a checked artifact. From the per-file item lists
//! produced by [`crate::parse`] it builds a workspace-wide symbol graph:
//! which named types transitively hold interior mutability (the *taint*
//! fixpoint), which statics and thread-locals exist per crate, what
//! payload shape every `Arc<..>` carries, and which `pub` items expose a
//! tainted type across a crate boundary. The S-rules in
//! [`crate::rules::RULES`] read their hits off this graph, and the
//! `parallel_safety.json` certificate (see [`crate::cert`]) serializes
//! the census so the future parallel executor can consume it as a
//! machine-checked precondition.

use std::collections::BTreeMap;

use crate::lexer::{Tok, Token};
use crate::parse::{ArcApp, Item, ItemKind, TypeExpr, Vis, WildcardMatch};

/// Interior-mutability primitives: a value of (or containing) one of
/// these can be mutated through a shared reference, which is exactly the
/// channel that would let two clusters interact off the bus. Any
/// `Atomic*`-prefixed name counts too.
pub const INTERIOR_MUT: &[&str] = &[
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "OnceLock",
    "LazyLock",
    "Lazy",
    "Mutex",
    "RwLock",
];

/// Enums whose matches must stay exhaustive (rule S4): a wildcard arm
/// would let a new fault or trace variant silently fall through the very
/// machinery that exists to account for every case.
pub const PROTECTED_ENUMS: &[&str] = &["TraceKind", "FaultEvent", "PlanKind"];

/// `true` if `name` is an interior-mutability primitive.
pub fn is_interior_mut(name: &str) -> bool {
    INTERIOR_MUT.contains(&name) || name.starts_with("Atomic")
}

/// One file's contribution to the symbol graph.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// Path label used in diagnostics.
    pub file: String,
    /// Owning crate name (`kernel` for `crates/kernel/src/..`), or the
    /// file label itself for ad-hoc single-file runs.
    pub krate: String,
    /// Parsed items, already filtered to non-`#[cfg(test)]` lines.
    pub items: Vec<Item>,
    /// Wildcard matches over protected enums (rule S4 candidates).
    pub matches: Vec<WildcardMatch>,
    /// Expression-level `Arc::new(Head::new(..))` constructions — type
    /// positions inside function bodies are not parsed as items, so the
    /// common construction site is caught at the expression level.
    pub arc_exprs: Vec<ArcApp>,
}

/// A symbol's location, for the census and diagnostics.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SymbolRef {
    /// Path label of the defining file.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// The symbol name (fields as `Type.field`).
    pub name: String,
    /// Short note: the interior-mut root, mutability, or payload head.
    pub note: String,
}

/// Per-crate shared-symbol census, serialized into the certificate.
#[derive(Debug, Default)]
pub struct CrateCensus {
    /// Every `static` item (global or function-local).
    pub statics: Vec<SymbolRef>,
    /// Every `thread_local!` static.
    pub thread_locals: Vec<SymbolRef>,
    /// Names of types defined in this crate that transitively hold
    /// interior mutability, with the primitive that roots the taint.
    pub interior_mut_types: Vec<SymbolRef>,
    /// Plain-`pub` items whose type mentions a tainted name (S2
    /// candidates, whether violating or waived).
    pub pub_exposures: Vec<SymbolRef>,
    /// `Arc` payload heads seen in this crate's types and expressions,
    /// with occurrence counts.
    pub arc_payloads: BTreeMap<String, u32>,
}

/// The workspace symbol graph: taint closure plus per-crate census.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// Tainted type names → the interior-mut primitive rooting the taint.
    pub tainted: BTreeMap<String, String>,
    /// Census per crate, keyed by crate name.
    pub crates: BTreeMap<String, CrateCensus>,
}

impl SymbolGraph {
    /// The interior-mut root of `name`, if the type is tainted.
    pub fn taint_root<'a>(&'a self, name: &'a str) -> Option<&'a str> {
        if is_interior_mut(name) {
            Some(name)
        } else {
            self.tainted.get(name).map(String::as_str)
        }
    }

    /// The first tainted identifier a type expression mentions, with its
    /// interior-mut root: `Some((ident, root))`.
    pub fn type_taint<'g>(&'g self, ty: &'g TypeExpr) -> Option<(&'g str, &'g str)> {
        ty.idents.iter().find_map(|id| self.taint_root(id).map(|root| (id.as_str(), root)))
    }
}

/// Builds the symbol graph over every deterministic file's symbols: runs
/// the taint fixpoint, then fills the per-crate census.
pub fn build<'a>(files: impl IntoIterator<Item = &'a FileSymbols>) -> SymbolGraph {
    let files: Vec<&FileSymbols> = files.into_iter().collect();
    let mut graph = SymbolGraph::default();

    // Taint fixpoint: a named type is tainted if any type expression in
    // its definition mentions an interior-mut primitive or a name already
    // tainted. Names are matched bare (last path segment) across the
    // whole deterministic set — conservative, and exactly right for a
    // boundary check: a false share is a waiver away, a missed share is
    // a race.
    loop {
        let mut changed = false;
        for fs in &files {
            for item in &fs.items {
                if graph.tainted.contains_key(&item.name) {
                    continue;
                }
                let root = match &item.kind {
                    ItemKind::Struct { fields } | ItemKind::Enum { fields } => {
                        fields.iter().find_map(|f| graph.type_taint(&f.ty).map(|(_, r)| r))
                    }
                    ItemKind::TypeAlias { ty } => graph.type_taint(ty).map(|(_, r)| r),
                    _ => None,
                };
                if let Some(root) = root {
                    let root = root.to_string();
                    graph.tainted.insert(item.name.clone(), root);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // The census is filled into a local map so taint lookups on `graph`
    // stay borrowable while a crate's census is mutably held.
    let mut crates: BTreeMap<String, CrateCensus> = BTreeMap::new();
    for fs in &files {
        let census = crates.entry(fs.krate.clone()).or_default();
        for item in &fs.items {
            let sym = |name: &str, line: u32, note: String| SymbolRef {
                file: fs.file.clone(),
                line,
                name: name.to_string(),
                note,
            };
            match &item.kind {
                ItemKind::Static { mutable, ty } => {
                    let note = match (mutable, graph.type_taint(ty)) {
                        (true, _) => "mut".to_string(),
                        (false, Some((_, root))) => format!("interior-mut via {root}"),
                        (false, None) => "frozen".to_string(),
                    };
                    census.statics.push(sym(&item.name, item.line, note));
                }
                ItemKind::ThreadLocal { ty } => {
                    let note = match graph.type_taint(ty) {
                        Some((_, root)) => format!("interior-mut via {root}"),
                        None => "frozen".to_string(),
                    };
                    census.thread_locals.push(sym(&item.name, item.line, note));
                }
                ItemKind::Struct { .. } | ItemKind::Enum { .. } | ItemKind::TypeAlias { .. } => {
                    if let Some(root) = graph.tainted.get(&item.name) {
                        census.interior_mut_types.push(sym(
                            &item.name,
                            item.line,
                            format!("via {root}"),
                        ));
                    }
                }
                _ => {}
            }
            for (name, _line, ty) in exposures(item) {
                if let Some((id, root)) = graph.type_taint(ty) {
                    census.pub_exposures.push(sym(&name, item.line, format!("{id} via {root}")));
                }
            }
            for ty in item_types(item) {
                for arc in &ty.arcs {
                    *census.arc_payloads.entry(arc.head.clone()).or_insert(0) += 1;
                }
            }
        }
        for arc in &fs.arc_exprs {
            *census.arc_payloads.entry(arc.head.clone()).or_insert(0) += 1;
        }
        // Dedup and order the census lists deterministically.
        for list in [
            &mut census.statics,
            &mut census.thread_locals,
            &mut census.interior_mut_types,
            &mut census.pub_exposures,
        ] {
            list.sort();
            list.dedup();
        }
    }
    graph.crates = crates;

    graph
}

/// Every type expression an item declares (fields, alias target, static
/// type, return type) — the positions S3 scans for `Arc` payloads.
fn item_types(item: &Item) -> Vec<&TypeExpr> {
    match &item.kind {
        ItemKind::Static { ty, .. }
        | ItemKind::ThreadLocal { ty }
        | ItemKind::Const { ty }
        | ItemKind::TypeAlias { ty } => vec![ty],
        ItemKind::Struct { fields } | ItemKind::Enum { fields } => {
            fields.iter().map(|f| &f.ty).collect()
        }
        ItemKind::Fn { ret } => ret.iter().collect(),
    }
}

/// The `(name, line, type)` positions of an item that plain-`pub`
/// visibility pushes across the crate boundary (rule S2): pub fields of a
/// pub struct, all variant fields of a pub enum, a pub alias's target, a
/// pub fn's return type. Statics are S1's business and consts copy per
/// use, so neither appears here.
fn exposures(item: &Item) -> Vec<(String, u32, &TypeExpr)> {
    if item.vis != Vis::Pub || item.in_fn {
        return Vec::new();
    }
    match &item.kind {
        ItemKind::Struct { fields } => fields
            .iter()
            .filter(|f| f.vis == Vis::Pub)
            .map(|f| (format!("{}.{}", item.name, f.name), f.line, &f.ty))
            .collect(),
        ItemKind::Enum { fields } => {
            fields.iter().map(|f| (format!("{}::{}", item.name, f.name), f.line, &f.ty)).collect()
        }
        ItemKind::TypeAlias { ty } => vec![(item.name.clone(), item.line, ty)],
        ItemKind::Fn { ret: Some(ty) } => vec![(item.name.clone(), item.line, ty)],
        _ => Vec::new(),
    }
}

/// Scans a token stream for `Arc::new(Head::..)` constructions, the
/// expression-level complement of the type-position `Arc<..>` scan.
pub fn arc_new_exprs(tokens: &[Token]) -> Vec<ArcApp> {
    let mut found = Vec::new();
    let ident = |i: usize| match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| tokens.get(i).is_some_and(|t| t.tok == Tok::Punct(c));
    for i in 0..tokens.len() {
        if ident(i) != Some("Arc") || !punct(i + 1, ':') || !punct(i + 2, ':') {
            continue;
        }
        // Allow a turbofish between `Arc::` and `new`.
        let mut j = i + 3;
        if punct(j, '<') {
            let mut depth = 0usize;
            while j < tokens.len() {
                if punct(j, '<') {
                    depth += 1;
                } else if punct(j, '>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            if !punct(j, ':') || !punct(j + 1, ':') {
                continue;
            }
            j += 2;
        }
        if ident(j) != Some("new") || !punct(j + 1, '(') {
            continue;
        }
        // The argument's head: `Arc::new(Mutex::new(0))` → `Mutex`.
        if let Some(head) = ident(j + 2) {
            if punct(j + 3, ':') && punct(j + 4, ':') {
                found.push(ArcApp { line: tokens[i].line, head: head.to_string() });
            }
        }
    }
    found
}

/// Generates the S-rule hits for one file against the workspace graph.
/// Only called for deterministic-class files.
pub fn s_hits(fs: &FileSymbols, graph: &SymbolGraph) -> Vec<(u32, &'static str, String)> {
    let mut hits = Vec::new();

    for item in &fs.items {
        // S1: mutable global state.
        match &item.kind {
            ItemKind::Static { mutable: true, .. } => {
                hits.push((
                    item.line,
                    "S1",
                    format!(
                        "`static mut {}` is writable global state; clusters may only interact through the bus",
                        item.name
                    ),
                ));
            }
            ItemKind::Static { mutable: false, ty } => {
                if let Some((id, root)) = graph.type_taint(ty) {
                    hits.push((
                        item.line,
                        "S1",
                        format!(
                            "static `{}` holds interior mutability (`{id}` via `{root}`); writable global state escapes the bus-only sharing boundary",
                            item.name
                        ),
                    ));
                }
            }
            ItemKind::ThreadLocal { .. } => {
                hits.push((
                    item.line,
                    "S1",
                    format!(
                        "thread-local static `{}` pins state to an OS thread; cluster state must live in the World so any worker can own it",
                        item.name
                    ),
                ));
            }
            _ => {}
        }

        // S2: interior mutability exposed through a plain-`pub` item.
        for (name, line, ty) in exposures(item) {
            if let Some((id, root)) = graph.type_taint(ty) {
                hits.push((
                    line,
                    "S2",
                    format!(
                        "pub {} `{name}` exposes interior mutability (`{id}` via `{root}`) across the crate boundary",
                        item.kind.name()
                    ),
                ));
            }
        }

        // S3: Arc of a non-Freeze payload in type positions.
        for ty in item_types(item) {
            for arc in &ty.arcs {
                if let Some(root) = graph.taint_root(&arc.head) {
                    hits.push((
                        arc.line,
                        "S3",
                        format!(
                            "`Arc<{}>` shares a mutable payload (`{root}`); Arc payloads must be frozen (`Arc<[u8]>`-style)",
                            arc.head
                        ),
                    ));
                }
            }
        }
    }

    // S3, expression form.
    for arc in &fs.arc_exprs {
        if let Some(root) = graph.taint_root(&arc.head) {
            hits.push((
                arc.line,
                "S3",
                format!(
                    "`Arc::new({}::..)` shares a mutable payload (`{root}`); Arc payloads must be frozen (`Arc<[u8]>`-style)",
                    arc.head
                ),
            ));
        }
    }

    // S4: wildcard arms over protected enums.
    for m in &fs.matches {
        hits.push((
            m.wildcard_line,
            "S4",
            format!(
                "`_` arm in a match over `{}` (match at line {}); enumerate the variants so new ones cannot silently fall through",
                m.enum_name, m.line
            ),
        ));
    }

    // One construct can hit one rule only once per line.
    hits.sort();
    hits.dedup();
    hits
}

/// Derives the owning crate name from a workspace-relative label:
/// `crates/kernel/src/world.rs` → `kernel`. Ad-hoc labels (single-file
/// CLI runs, fixtures) fall back to the label itself so census grouping
/// stays deterministic without inventing a crate.
pub fn crate_of(label: &str) -> String {
    let mut parts = label.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            if parts.next() == Some("src") {
                return name.to_string();
            }
        }
    }
    format!("({label})")
}

/// All protected-enum names referenced by any file's S4 scan — exposed so
/// the certificate can record what the rule protects.
pub fn protected_enums() -> &'static [&'static str] {
    PROTECTED_ENUMS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn symbols(file: &str, src: &str) -> FileSymbols {
        let toks = lex(src).tokens;
        FileSymbols {
            file: file.to_string(),
            krate: crate_of(file),
            items: parse(&toks),
            matches: crate::parse::wildcard_protected_matches(&toks, PROTECTED_ENUMS),
            arc_exprs: arc_new_exprs(&toks),
        }
    }

    #[test]
    fn taint_propagates_across_files() {
        let a = symbols("crates/bus/src/a.rs", "pub struct Inner { c: Cell<u64> }\n");
        let b = symbols(
            "crates/kernel/src/b.rs",
            "pub struct Outer { pub i: Inner }\npub type T = Outer;\n",
        );
        let g = build(&[a, b]);
        assert_eq!(g.tainted.get("Inner").map(String::as_str), Some("Cell"));
        assert_eq!(g.tainted.get("Outer").map(String::as_str), Some("Cell"));
        assert_eq!(g.tainted.get("T").map(String::as_str), Some("Cell"));
    }

    #[test]
    fn census_counts_statics_and_arcs() {
        let fs = symbols(
            "crates/bus/src/bytes.rs",
            "static COUNT: AtomicU64 = AtomicU64::new(0);\n\
             pub struct B { buf: Arc<[u8]> }\n\
             fn f() { let x = Arc::new(Mutex::new(0)); }\n",
        );
        let g = build(&[fs]);
        let c = g.crates.get("bus").expect("bus census");
        assert_eq!(c.statics.len(), 1);
        assert!(c.statics[0].note.contains("AtomicU64"));
        assert_eq!(c.arc_payloads.get("[..]"), Some(&1));
        assert_eq!(c.arc_payloads.get("Mutex"), Some(&1));
    }

    #[test]
    fn arc_new_expression_scan() {
        let toks = lex("let a = Arc::new(Mutex::new(0)); let b = Arc::<[u8]>::new(x); let c = Arc::new(bytes);").tokens;
        let arcs = arc_new_exprs(&toks);
        assert_eq!(arcs.len(), 1, "{arcs:?}");
        assert_eq!(arcs[0].head, "Mutex");
    }

    #[test]
    fn s_hits_cover_all_four_rules() {
        let fs = symbols(
            "crates/kernel/src/x.rs",
            "static mut GLOBAL: u64 = 0;\n\
             thread_local! { static TL: u64 = 0; }\n\
             pub struct P { pub c: RefCell<u64> }\n\
             struct D { q: Arc<AtomicU64> }\n\
             fn f(k: TraceKind) -> u32 { match k { TraceKind::A => 1, _ => 0 } }\n",
        );
        let g = build(std::slice::from_ref(&fs));
        let hits = s_hits(&fs, &g);
        let rules: Vec<&str> = hits.iter().map(|h| h.1).collect();
        assert!(rules.contains(&"S1"), "{hits:?}");
        assert!(rules.contains(&"S2"), "{hits:?}");
        assert!(rules.contains(&"S3"), "{hits:?}");
        assert!(rules.contains(&"S4"), "{hits:?}");
    }

    #[test]
    fn frozen_arcs_and_private_cells_are_legal() {
        let fs = symbols(
            "crates/bus/src/y.rs",
            "pub struct SharedBytes { buf: Arc<[u8]> }\n\
             pub struct Img { img: Arc<dyn ProcessImage> }\n\
             struct Hidden { c: Cell<u64> }\n\
             pub fn len(b: &SharedBytes) -> usize { b.buf.len() }\n",
        );
        let g = build(std::slice::from_ref(&fs));
        let hits = s_hits(&fs, &g);
        // `Hidden` is tainted but private and unexposed; SharedBytes's
        // Arc payload is frozen. Nothing fires. But a pub fn *returning*
        // SharedBytes stays legal too: the struct is not tainted.
        assert!(hits.is_empty(), "{hits:?}");
        assert_eq!(g.tainted.get("Hidden").map(String::as_str), Some("Cell"));
        assert!(!g.tainted.contains_key("SharedBytes"));
    }
}
