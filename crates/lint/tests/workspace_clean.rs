//! Tier-1 integration test: the real workspace is lint-clean, and the
//! CLI's exit codes behave as CI relies on them to.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().expect("workspace root exists")
}

#[test]
fn real_workspace_is_lint_clean() {
    let report = auros_lint::lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(report.det_files > 30, "walker should find the sim crates, saw {}", report.det_files);
    assert!(
        report.diagnostics.is_empty(),
        "workspace has determinism violations:\n{}",
        report.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
    // The waivers that do exist all carry reasons (the parser enforces
    // this, but assert it where CI can see the contract).
    assert!(report.waived.iter().all(|w| !w.reason.trim().is_empty()));
}

fn run_cli(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_auros-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("run auros-lint")
}

#[test]
fn cli_deny_exits_zero_on_workspace() {
    let root = workspace_root();
    let out = run_cli(&["--deny"], &root);
    assert!(
        out.status.success(),
        "--deny on the workspace must pass:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_deny_exits_nonzero_on_each_violation_fixture() {
    let root = workspace_root();
    let fixtures = root.join("crates/lint/tests/fixtures");
    for rel in [
        "d1/violation.rs",
        "d2/violation.rs",
        "d3/violation.rs",
        "d4/violation.rs",
        "d5/violation/crash.rs",
    ] {
        let path = fixtures.join(rel);
        let out = run_cli(&["--deny", "--class", "det", path.to_str().expect("utf8 path")], &root);
        assert!(!out.status.success(), "{rel} must fail under --deny");
    }
}

#[test]
fn cli_explain_documents_every_rule() {
    let root = workspace_root();
    for rule in auros_lint::RULES {
        let out = run_cli(&["--explain", rule.id], &root);
        assert!(out.status.success(), "--explain {} failed", rule.id);
        assert!(!out.stdout.is_empty());
    }
    let out = run_cli(&["--explain", "D99"], &root);
    assert!(!out.status.success(), "unknown rule must be an error");
}
