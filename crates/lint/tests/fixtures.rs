//! Fixture-based self-test: every rule × {violation, clean, waived}.
//!
//! Fixtures live under `tests/fixtures/` (a directory name the workspace
//! walker deliberately skips, so the real-workspace scan never sees these
//! intentionally bad files). Each violation fixture must produce at least
//! one diagnostic of its rule and nothing else; each clean fixture must
//! be silent; each waived fixture must be silent *and* register waived
//! sites, every one carrying a reason.

use std::path::{Path, PathBuf};

use auros_lint::{lint_source, CrateClass, FileReport};

fn fixture(rel: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    // The basename drives D5's fault-path check, so lint under it.
    let label = Path::new(rel).file_name().map(|n| n.to_string_lossy().into_owned());
    (label.unwrap_or_else(|| rel.to_string()), src)
}

fn lint_fixture(rel: &str, class: CrateClass) -> FileReport {
    let (label, src) = fixture(rel);
    lint_source(&label, class, &src)
}

fn assert_violates(rel: &str, rule: &str, at_least: usize) {
    let r = lint_fixture(rel, CrateClass::Deterministic);
    let hits = r.diagnostics.iter().filter(|d| d.rule == rule).count();
    assert!(hits >= at_least, "{rel}: wanted ≥{at_least} {rule}, got {:?}", r.diagnostics);
    assert!(
        r.diagnostics.iter().all(|d| d.rule == rule),
        "{rel}: unexpected extra rules: {:?}",
        r.diagnostics
    );
}

fn assert_clean(rel: &str) {
    let r = lint_fixture(rel, CrateClass::Deterministic);
    assert!(r.diagnostics.is_empty(), "{rel}: expected clean, got {:?}", r.diagnostics);
}

fn assert_waived(rel: &str, rule: &str, at_least: usize) {
    let r = lint_fixture(rel, CrateClass::Deterministic);
    assert!(r.diagnostics.is_empty(), "{rel}: expected all waived, got {:?}", r.diagnostics);
    let waived = r.waived.iter().filter(|w| w.rule == rule).count();
    assert!(waived >= at_least, "{rel}: wanted ≥{at_least} waived {rule}, got {:?}", r.waived);
    assert!(
        r.waived.iter().all(|w| !w.reason.trim().is_empty()),
        "{rel}: every waiver must carry a reason: {:?}",
        r.waived
    );
}

#[test]
fn d1_hash_collections() {
    assert_violates("d1/violation.rs", "D1", 2);
    assert_clean("d1/clean.rs");
    assert_waived("d1/waived.rs", "D1", 1);
}

#[test]
fn d2_wall_clock() {
    assert_violates("d2/violation.rs", "D2", 2);
    assert_clean("d2/clean.rs");
    assert_waived("d2/waived.rs", "D2", 1);
}

#[test]
fn d3_threads_and_entropy() {
    assert_violates("d3/violation.rs", "D3", 3);
    assert_clean("d3/clean.rs");
    assert_waived("d3/waived.rs", "D3", 1);
}

#[test]
fn d4_floating_point() {
    assert_violates("d4/violation.rs", "D4", 4);
    assert_clean("d4/clean.rs");
    assert_waived("d4/waived.rs", "D4", 3);
}

#[test]
fn d5_fault_path_unwraps() {
    assert_violates("d5/violation/crash.rs", "D5", 2);
    assert_clean("d5/clean/crash.rs");
    assert_waived("d5/waived/crash.rs", "D5", 1);
}

#[test]
fn d6_untyped_trace_emission() {
    assert_violates("d6/violation.rs", "D6", 3);
    assert_clean("d6/clean.rs");
    assert_waived("d6/waived.rs", "D6", 1);
}

#[test]
fn s1_mutable_global_state() {
    assert_violates("s1/violation.rs", "S1", 4);
    assert_clean("s1/clean.rs");
    assert_waived("s1/waived.rs", "S1", 1);
}

#[test]
fn s2_interior_mutability_across_pub_boundary() {
    assert_violates("s2/violation.rs", "S2", 4);
    assert_clean("s2/clean.rs");
    assert_waived("s2/waived.rs", "S2", 1);
}

#[test]
fn s3_arc_of_non_freeze_payload() {
    assert_violates("s3/violation.rs", "S3", 4);
    assert_clean("s3/clean.rs");
    assert_waived("s3/waived.rs", "S3", 1);
}

#[test]
fn s4_wildcard_over_protected_enum() {
    assert_violates("s4/violation.rs", "S4", 2);
    assert_clean("s4/clean.rs");
    assert_waived("s4/waived.rs", "S4", 1);
}

#[test]
fn w0_malformed_waivers() {
    let r = lint_fixture("waiver/malformed.rs", CrateClass::Deterministic);
    let w0 = r.diagnostics.iter().filter(|d| d.rule == "W0").count();
    assert_eq!(w0, 3, "{:?}", r.diagnostics);
    // Malformed waivers are caught in host files too — documentation bugs
    // are class-independent.
    let host = lint_fixture("waiver/malformed.rs", CrateClass::Host);
    assert_eq!(host.diagnostics.iter().filter(|d| d.rule == "W0").count(), 3);
}

#[test]
fn w1_unused_waiver() {
    let r = lint_fixture("waiver/unused.rs", CrateClass::Deterministic);
    assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
    assert_eq!(r.diagnostics[0].rule, "W1");
}

#[test]
fn host_class_ignores_every_violation_fixture() {
    for rel in [
        "d1/violation.rs",
        "d2/violation.rs",
        "d3/violation.rs",
        "d4/violation.rs",
        "d5/violation/crash.rs",
        "d6/violation.rs",
        "s1/violation.rs",
        "s2/violation.rs",
        "s3/violation.rs",
        "s4/violation.rs",
    ] {
        let r = lint_fixture(rel, CrateClass::Host);
        assert!(r.diagnostics.is_empty(), "{rel} under host class: {:?}", r.diagnostics);
    }
}

#[test]
fn every_rule_has_an_explanation_with_citation() {
    for rule in auros_lint::RULES {
        assert!(!rule.explain.trim().is_empty(), "{} lacks an explanation", rule.id);
        if rule.id.starts_with('D') || rule.id.starts_with('S') {
            assert!(rule.explain.contains('§'), "{} must cite a paper section", rule.id);
        }
    }
}
