//! S4 fixture: wildcard arms over protected enums. Adding a variant
//! to `TraceKind` or `PlanKind` must be a compile error at every
//! consumer, not a silently-absorbed default.

fn classify(k: TraceKind) -> u32 {
    match k {
        TraceKind::SyncStart { cluster } => cluster,
        _ => 0,
    }
}

fn plan_cost(p: PlanKind) -> u64 {
    match p {
        PlanKind::CleanRun => 0,
        PlanKind::SingleCrash => 1,
        _ if true => 2,
    }
}
