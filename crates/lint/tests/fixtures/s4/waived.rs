//! S4 waived fixture: a predicate that is genuinely uniform over
//! every non-matching variant, waived with a recorded reason.

fn is_wire(e: FaultEvent) -> bool {
    match e {
        FaultEvent::DropFrame { seq } => seq > 0,
        // auros-lint: allow(S4) -- predicate is genuinely uniform over every non-wire variant
        _ => false,
    }
}
