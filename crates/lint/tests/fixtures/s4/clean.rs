//! S4 clean fixture: exhaustive matches over protected enums are
//! fine, wildcards over *unprotected* scrutinees are fine, and a
//! wildcard in a nested match over plain data does not leak out to
//! the protected match around it.

fn classify(k: TraceKind) -> u32 {
    match k {
        TraceKind::SyncStart { cluster } => cluster,
        TraceKind::CrashDetected { cluster } | TraceKind::PromotingBackup { cluster } => cluster,
    }
}

fn nested(p: PlanKind, roll: u64) -> u64 {
    match p {
        PlanKind::CleanRun => match roll {
            0 => 0,
            _ => 1,
        },
        PlanKind::SingleCrash => 2,
    }
}

fn unprotected(n: u64) -> u64 {
    match n {
        0 => 0,
        _ => 1,
    }
}
