//! Graph-pin fixture: a small multi-module crate image whose symbol
//! graph (module paths, taint propagation, census) is pinned by
//! `tests/parse_graph.rs`. Not rule-pure on purpose — it exists to
//! exercise the graph, not the rules.

pub mod fabric {
    pub struct Frame {
        pub payload: Bytes,
        seq: u64,
    }

    pub struct Bytes {
        buf: Arc<[u8]>,
    }
}

mod metrics {
    pub struct Gauge {
        value: Cell<u64>,
    }

    pub type GaugeRef = Gauge;
}

pub mod state {
    static HIGH_WATER: u64 = 0;

    thread_local! {
        static LOCAL: u64 = 0;
    }
}
