//! S1 waived fixture: an observability counter escapes the rule with
//! a recorded reason, mirroring the bus payload-allocation probe.

// auros-lint: allow(S1) -- observability-only counter: monotonic, never read by sim logic
static ALLOCS: AtomicU64 = AtomicU64::new(0);

pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}
