//! S1 clean fixture: immutable Freeze globals and ordinary owned
//! state are fine — only *mutable* process-global state is banned.

static LIMIT: u64 = 64;

const WINDOW: u64 = 400_000;

static BANNER: &str = "auros";

pub struct Counter {
    ticks: u64,
}

impl Counter {
    pub fn bump(&mut self) {
        self.ticks += 1;
    }
}
