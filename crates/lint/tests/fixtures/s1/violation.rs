//! S1 fixture: mutable global state in a deterministic crate.
//! Four distinct shapes, all violations: `static mut`, an
//! interior-mutability static, a thread-local, and a function-local
//! static (function bodies are not an escape hatch).

static mut TICKS: u64 = 0;

static SLOT: OnceLock<u64> = OnceLock::new();

thread_local! {
    static SCRATCH: Vec<u64> = Vec::new();
}

fn bump() {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    COUNTER.fetch_add(1, Ordering::Relaxed);
}
