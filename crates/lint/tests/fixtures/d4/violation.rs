//! D4 fixture: floating point in accounting code.

pub fn utilization(busy: u64, total: u64) -> f64 {
    busy as f64 / total as f64
}

pub fn threshold(total: u64) -> u64 {
    (total as f32 * 0.8) as u64
}
