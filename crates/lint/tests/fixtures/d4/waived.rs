//! D4 fixture: a waived reporting-only ratio computed from final integer
//! totals, after the simulation has ended.

pub fn report_ratio(tx: u64, ticks: u64) -> f64 { // auros-lint: allow(D4) -- reporting-only ratio over final totals
    // auros-lint: allow(D4) -- reporting-only ratio over final totals
    tx as f64 * 1_000_000.0 / ticks as f64
}
