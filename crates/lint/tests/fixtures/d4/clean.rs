//! D4 fixture: integer accounting. Ratios are carried as scaled integers
//! (parts per million), ranges like `0..10` must not read as floats.

pub fn utilization_ppm(busy: u64, total: u64) -> u64 {
    busy.saturating_mul(1_000_000) / total.max(1)
}

pub fn sum() -> u64 {
    (0..10).map(|i| i * 2).sum()
}
