//! D1 fixture: BTree collections are fine, and mentions of HashMap in
//! comments or strings ("HashMap is banned") must not trip the lexer.

use std::collections::{BTreeMap, BTreeSet};

pub struct Table {
    by_owner: BTreeMap<u64, Vec<u32>>,
    seen: BTreeSet<u64>,
}

pub fn banner() -> &'static str {
    // The word HashMap appears here and in the string below; neither is code.
    "use BTreeMap, not HashMap"
}
