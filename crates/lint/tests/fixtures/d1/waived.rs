//! D1 fixture: a waived hash set. The set is membership-only and never
//! iterated, and the waiver records that.

pub struct Dedup {
    // auros-lint: allow(D1) -- membership-only scratch set, never iterated
    seen: std::collections::HashSet<u64>,
}
