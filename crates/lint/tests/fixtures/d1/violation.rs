//! D1 fixture: hash collections in a deterministic crate.

use std::collections::HashMap;

pub struct Table {
    by_owner: HashMap<u64, Vec<u32>>,
    seen: std::collections::HashSet<u64>,
}

impl Table {
    pub fn new() -> Table {
        Table { by_owner: HashMap::new(), seen: std::collections::HashSet::new() }
    }
}
