//! S3 waived fixture: a host-bridge handle that never enters a
//! message, waived with a recorded reason.

struct Bridge {
    // auros-lint: allow(S3) -- host-side bridge handle: never enters a message or crosses a cluster
    flag: Arc<AtomicU64>,
}
