//! S3 clean fixture: `Arc` of Freeze payloads is the blessed idiom —
//! shared immutable bytes, trait objects, and owned program text.

pub struct SharedBytes {
    buf: Arc<[u8]>,
}

struct Image {
    image: Arc<ProcessImage>,
    program: Arc<Vec<Inst>>,
}

fn intern(data: &[u8]) -> Arc<[u8]> {
    Arc::from(data)
}
