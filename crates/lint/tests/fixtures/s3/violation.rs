//! S3 fixture: `Arc` of a non-Freeze payload. Shared ownership of a
//! mutable cell is exactly the cross-cluster channel the simulation
//! must not have. Four shapes: two fields, a type alias, and an
//! `Arc::new(..)` expression.

struct Delivery {
    acks: Arc<AtomicU64>,
    guard: Arc<Mutex<u64>>,
}

type SharedState = Arc<RwLock<u64>>;

fn share() -> Arc<AtomicU64> {
    Arc::new(AtomicU64::new(0))
}
