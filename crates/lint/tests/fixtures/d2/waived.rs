//! D2 fixture: a waived wall-clock read (e.g. a trace header stamped once
//! at startup, outside the replayed state).

pub fn trace_header() -> u64 {
    let t = std::time::SystemTime::now(); // auros-lint: allow(D2) -- startup banner only, never enters sim state
    let _ = t;
    0
}
