//! D2 fixture: wall-clock time in a deterministic crate.

use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    std::time::SystemTime::now();
    t0.elapsed().as_nanos()
}
