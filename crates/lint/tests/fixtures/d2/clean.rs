//! D2 fixture: `Duration` is an inert value type and is permitted; all
//! actual clock reads go through virtual time.

use std::time::Duration;

pub fn tick() -> Duration {
    Duration::from_micros(1)
}
