//! D3 fixture: OS threads, channels, and unseeded randomness.

pub fn run() {
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    std::thread::spawn(move || tx.send(thread_rng().next_u64()));
    let _ = rx.recv();
}
