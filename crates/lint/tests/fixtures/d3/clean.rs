//! D3 fixture: seeded randomness and event-queue concurrency are the
//! sanctioned equivalents. `std::sync::Arc` is fine — sharing is not
//! scheduling.

use std::sync::Arc;

pub fn run(seed: u64) -> u64 {
    let rng = Arc::new(seed.wrapping_mul(0x9e3779b97f4a7c15));
    *rng
}
