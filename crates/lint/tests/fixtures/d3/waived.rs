//! D3 fixture: a waived entropy draw (hypothetical one-time seed capture
//! behind a feature gate).

pub fn capture_seed() -> u64 {
    // auros-lint: allow(D3) -- feature-gated seed capture; recorded into the trace before use
    let rng = thread_rng();
    let _ = rng;
    0
}
