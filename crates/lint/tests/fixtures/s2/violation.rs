//! S2 fixture: interior mutability reachable through `pub` items.
//! Four exposure paths, all violations: a pub field, a pub type
//! alias, an enum variant payload, and a pub fn return type.

pub struct Shared {
    pub cell: RefCell<u64>,
}

pub type SharedCell = Cell<u32>;

pub enum Slot {
    Ready(RefCell<u64>),
    Empty,
}

pub fn peek(s: &Shared) -> &RefCell<u64> {
    &s.cell
}
