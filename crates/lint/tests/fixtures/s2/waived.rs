//! S2 waived fixture: a deliberate perf-counter escape hatch,
//! exported with a recorded reason.

pub struct Probe {
    // auros-lint: allow(S2) -- perf-counter escape hatch: the bench harness reads it, sim code never does
    pub hits: Cell<u64>,
}
