//! S2 clean fixture: interior mutability is allowed as long as it
//! never crosses the crate boundary — private fields and
//! `pub(crate)` items stay invisible to other sim crates.

pub struct Stats {
    pending: Cell<u64>,
}

impl Stats {
    pub fn pending(&self) -> u64 {
        self.pending.get()
    }
}

pub(crate) struct CrateLocal {
    pub slot: RefCell<u64>,
}

pub fn total(s: &Stats) -> u64 {
    s.pending()
}
