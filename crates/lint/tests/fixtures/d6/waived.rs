//! D6 fixture: a free-text emission carrying its waiver.

pub fn run(trace: &mut TraceLog, at: VTime) {
    // auros-lint: allow(D6) -- prototype probe, removed before merge
    trace.emit(at, Loc::World, "scratch probe");
}
