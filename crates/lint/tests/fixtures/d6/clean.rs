//! D6 fixture: typed emissions (and unrelated string formatting).

pub fn run(trace: &mut TraceLog, at: VTime, pid: u64) {
    trace.emit(at, Loc::World, TraceKind::Finished { pid, status: 0 });
    trace.emit(at, Loc::Cluster(0), TraceKind::Killed { pid, fault: TraceFault::StraySigReturn });
    let label = format!("cluster {pid}");
    let _ = label;
}
