//! D6 fixture: untyped (string-building) trace emissions.

pub fn run(trace: &mut TraceLog, at: VTime, pid: u64) {
    trace.emit(at, Loc::World, "process finished");
    trace.emit(at, Loc::Cluster(0), format!("killed pid {pid}"));
    trace.emit(at, Loc::World, || format!("lazy message for {pid}"));
}
