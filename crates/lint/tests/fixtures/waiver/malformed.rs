//! W0 fixture: waiver markers that do not parse. Each of these is a
//! documentation bug the tool must surface rather than silently ignore.

pub fn a() {
    let x = 1; // auros-lint: allow(D5)
    let _ = x;
}

pub fn b() {
    let y = 2; // auros-lint: allow(D5) --
    let _ = y;
}

pub fn c() {
    let z = 3; // auros-lint: allow() -- no rule named
    let _ = z;
}
