//! W1 fixture: a well-formed waiver whose target line has no matching
//! violation (the offending code was removed but the waiver stayed).

pub fn clean() -> u64 {
    // auros-lint: allow(D1) -- stale: the scratch set this excused is gone
    let x = 41;
    x + 1
}
