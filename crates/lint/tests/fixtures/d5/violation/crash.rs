//! D5 fixture: panicking accessors on a fault-handling path.

pub fn promote(backups: &mut std::collections::BTreeMap<u64, Vec<u8>>, pid: u64) -> Vec<u8> {
    let image = backups.remove(&pid).unwrap();
    let first = image.first().copied().expect("image nonempty");
    let _ = first;
    image
}
