//! D5 fixture: an invariant-message expect carrying its waiver.

pub fn promote(backups: &mut std::collections::BTreeMap<u64, Vec<u8>>, pid: u64) -> Vec<u8> {
    assert!(backups.contains_key(&pid));
    // auros-lint: allow(D5) -- invariant: presence asserted on the line above
    backups.remove(&pid).expect("asserted above")
}
