//! D5 fixture: the same logic with the failure cases handled. Unit tests
//! may unwrap freely — `#[cfg(test)]` code is host-side.

pub fn promote(backups: &mut std::collections::BTreeMap<u64, Vec<u8>>, pid: u64) -> Option<Vec<u8>> {
    let image = backups.remove(&pid)?;
    if image.is_empty() {
        return None;
    }
    Some(image)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_fine() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(1u64, vec![7u8]);
        assert_eq!(super::promote(&mut m, 1).unwrap(), vec![7]);
    }
}
