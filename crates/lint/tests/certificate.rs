//! The parallel-safety certificate contract: rendering is a pure
//! function of the workspace (byte-stable across runs, no timestamps,
//! no map-iteration nondeterminism), the committed copy at the repo
//! root carries the current schema, and the CLI's `--format json`
//! stdout is exactly the certificate.

use std::path::{Path, PathBuf};
use std::process::Command;

use auros_lint::{cert, lint_workspace};

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().expect("workspace root exists")
}

#[test]
fn certificate_is_byte_stable_across_runs() {
    let root = workspace_root();
    let a = cert::render(&lint_workspace(&root).expect("first lint pass"));
    let b = cert::render(&lint_workspace(&root).expect("second lint pass"));
    assert_eq!(a, b, "two renders of the same workspace must be byte-identical");
    assert!(a.starts_with('{') && a.ends_with("}\n"), "certificate is one JSON object");
    assert!(a.contains(&format!("\"schema\": \"{}\"", cert::SCHEMA)));
}

#[test]
fn committed_certificate_has_current_schema_and_certifies() {
    let path = workspace_root().join("parallel_safety.json");
    let text =
        std::fs::read_to_string(&path).expect("parallel_safety.json is committed at the repo root");
    // The committed copy is a snapshot artifact — CI regenerates and
    // uploads a fresh one — so pin the schema and the verdict, not the
    // full census (which legitimately moves as files are added).
    assert!(
        text.contains(&format!("\"schema\": \"{}\"", cert::SCHEMA)),
        "committed certificate carries a stale schema"
    );
    assert!(
        text.contains("\"certified\": true"),
        "committed certificate must certify the workspace"
    );
    assert!(text.ends_with("}\n"));
}

fn run_cli(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_auros-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("run auros-lint")
}

#[test]
fn cli_json_stdout_is_exactly_the_certificate() {
    let root = workspace_root();
    let out = run_cli(&["--deny", "--format", "json"], &root);
    assert!(out.status.success(), "--deny --format json must pass on the workspace");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let expected = cert::render(&lint_workspace(&root).expect("lint"));
    assert_eq!(stdout, expected, "JSON mode prints the certificate and nothing else");
}

#[test]
fn cli_certificate_flag_writes_the_same_bytes() {
    let root = workspace_root();
    let dir = std::env::temp_dir().join("auros-lint-cert-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("parallel_safety.json");
    let out = run_cli(&["--certificate", path.to_str().expect("utf8 path")], &root);
    assert!(out.status.success());
    let written = std::fs::read_to_string(&path).expect("certificate written");
    let expected = cert::render(&lint_workspace(&root).expect("lint"));
    assert_eq!(written, expected);
    let _ = std::fs::remove_file(&path);
}
