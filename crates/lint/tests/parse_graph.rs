//! Property and pin tests for the parse + symbol-graph layer.
//!
//! The parser must be *total* (any input yields an item list, never a
//! panic) and *span-stable* (item lines track source lines exactly), or
//! the S-rules and the certificate cannot be trusted on a codebase the
//! parser only approximates. The properties run on fixture-derived
//! inputs: splices of two fixture files cut at arbitrary char
//! boundaries (which subsumes truncation mid-token), and fixtures
//! shifted by leading blank lines. The pin test freezes the symbol
//! graph of a small multi-module fixture: module paths, taint
//! propagation, and the per-crate census.

use std::path::PathBuf;

use auros_lint::graph::{self, FileSymbols};
use auros_lint::{lexer, lint_source, parse, CrateClass};
use proptest::prelude::*;

/// Every `.rs` fixture under `tests/fixtures/`, sorted by path.
fn fixture_sources() -> Vec<(String, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut out = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("fixture dir") {
            let path = entry.expect("fixture entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path.strip_prefix(&root).expect("under root");
                out.push((
                    rel.to_string_lossy().replace('\\', "/"),
                    std::fs::read_to_string(&path).expect("fixture source"),
                ));
            }
        }
    }
    out.sort();
    assert!(out.len() >= 20, "fixture corpus unexpectedly small: {}", out.len());
    out
}

/// Largest char boundary of `s` at or below `i`.
fn floor_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

proptest! {
    /// Lexing, parsing, match scanning, Arc-expression scanning, and the
    /// full per-file lint pipeline never panic on a splice of two
    /// fixtures cut at arbitrary points, and every reported item line
    /// stays within the source's line range.
    #[test]
    fn parse_is_total_on_spliced_fixtures(
        a in 0usize..1024,
        b in 0usize..1024,
        cut_a in 0usize..4096,
        cut_b in 0usize..4096,
    ) {
        let sources = fixture_sources();
        let (_, sa) = &sources[a % sources.len()];
        let (_, sb) = &sources[b % sources.len()];
        let pre = floor_boundary(sa, cut_a % (sa.len() + 1));
        let suf = floor_boundary(sb, cut_b % (sb.len() + 1));
        let spliced = format!("{}{}", &sa[..pre], &sb[suf..]);

        let lexed = lexer::lex(&spliced);
        let items = parse::parse(&lexed.tokens);
        let last_line = spliced.lines().count().max(1) as u32;
        for item in &items {
            prop_assert!(
                item.line >= 1 && item.line <= last_line,
                "item {} at line {} outside 1..={last_line}",
                item.name,
                item.line
            );
        }
        // The downstream scans and the whole single-file pipeline must be
        // total too — they share the token stream.
        let _ = parse::wildcard_protected_matches(&lexed.tokens, graph::protected_enums());
        let _ = graph::arc_new_exprs(&lexed.tokens);
        let _ = lint_source("crates/sim/src/spliced.rs", CrateClass::Deterministic, &spliced);
    }

    /// Prepending `k` blank lines shifts every item and every wildcard
    /// match by exactly `k` and changes nothing else: spans come from the
    /// source, not from parser state.
    #[test]
    fn spans_shift_exactly_with_leading_blank_lines(a in 0usize..1024, k in 1u32..48) {
        let sources = fixture_sources();
        let (_, src) = &sources[a % sources.len()];
        let padded = format!("{}{src}", "\n".repeat(k as usize));

        let base = lexer::lex(src);
        let pad = lexer::lex(&padded);

        let base_items = parse::parse(&base.tokens);
        let pad_items = parse::parse(&pad.tokens);
        prop_assert_eq!(base_items.len(), pad_items.len());
        for (o, p) in base_items.iter().zip(&pad_items) {
            prop_assert_eq!(p.line, o.line + k);
            prop_assert_eq!(&p.name, &o.name);
            prop_assert_eq!(&p.module, &o.module);
            prop_assert_eq!(p.vis, o.vis);
            prop_assert_eq!(p.kind.name(), o.kind.name());
        }

        let protected = graph::protected_enums();
        let base_m = parse::wildcard_protected_matches(&base.tokens, protected);
        let pad_m = parse::wildcard_protected_matches(&pad.tokens, protected);
        prop_assert_eq!(base_m.len(), pad_m.len());
        for (o, p) in base_m.iter().zip(&pad_m) {
            prop_assert_eq!(p.line, o.line + k);
            prop_assert_eq!(p.wildcard_line, o.wildcard_line + k);
            prop_assert_eq!(&p.enum_name, &o.enum_name);
        }
    }
}

/// Freezes the symbol graph of `fixtures/graph/multi.rs`: item census
/// with module paths, the taint closure, and the per-crate rollup.
#[test]
fn symbol_graph_pin_for_multi_module_fixture() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph/multi.rs");
    let src = std::fs::read_to_string(&path).expect("graph fixture");
    let lexed = lexer::lex(&src);
    let fs = FileSymbols {
        file: "crates/sim/src/multi.rs".to_string(),
        krate: "sim".to_string(),
        items: parse::parse(&lexed.tokens),
        matches: parse::wildcard_protected_matches(&lexed.tokens, graph::protected_enums()),
        arc_exprs: graph::arc_new_exprs(&lexed.tokens),
    };

    let got: Vec<(String, &str, &str, u32)> = fs
        .items
        .iter()
        .map(|i| (i.module.join("::"), i.name.as_str(), i.kind.name(), i.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("fabric".to_string(), "Frame", "struct", 7),
            ("fabric".to_string(), "Bytes", "struct", 12),
            ("metrics".to_string(), "Gauge", "struct", 18),
            ("metrics".to_string(), "GaugeRef", "type", 22),
            ("state".to_string(), "HIGH_WATER", "static", 26),
            ("state".to_string(), "LOCAL", "thread_local", 29),
        ]
    );

    let g = graph::build([&fs]);

    // Taint: Gauge holds a Cell; the alias inherits it; the byte-buffer
    // types stay frozen.
    let tainted: Vec<(&str, &str)> =
        g.tainted.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    assert_eq!(tainted, vec![("Gauge", "Cell"), ("GaugeRef", "Cell")]);
    assert_eq!(g.taint_root("Frame"), None);
    assert_eq!(g.taint_root("Bytes"), None);

    // Census rollup for the one crate in the graph.
    let census = g.crates.get("sim").expect("sim census");
    let names = |refs: &[graph::SymbolRef]| -> Vec<String> {
        refs.iter().map(|r| format!("{}@{}", r.name, r.line)).collect()
    };
    assert_eq!(names(&census.statics), ["HIGH_WATER@26"]);
    assert_eq!(names(&census.thread_locals), ["LOCAL@29"]);
    assert_eq!(names(&census.interior_mut_types), ["Gauge@18", "GaugeRef@22"]);
    assert_eq!(names(&census.pub_exposures), ["GaugeRef@22"]);
    let arcs: Vec<(&str, u32)> =
        census.arc_payloads.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    assert_eq!(arcs, vec![("[..]", 1)]);
}
