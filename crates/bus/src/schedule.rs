//! Bus serialization and the dual-bus model.
//!
//! §7.4.2: "Since a cluster may transmit or receive only one message at a
//! time, messages are never interleaved." The schedule grants each frame
//! an exclusive transmission window; the frame is *delivered to every
//! target cluster at the window's end*, in one simulation event, which
//! realizes both atomicity properties of §5.1 structurally:
//! all-or-none (one event delivers to all live targets) and
//! non-interleaving (windows are disjoint and ordered).
//!
//! The Auragen 4000 has a **dual** intercluster bus; we model the pair as
//! an active bus plus a cold standby with instant failover and a per-bus
//! transmission ledger.

use auros_sim::{Dur, VTime};

/// Which physical bus of the dual pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusKind {
    /// Bus A (initially active).
    A,
    /// Bus B (standby).
    B,
}

/// Per-bus traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusCounters {
    /// Frames transmitted.
    pub frames: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Ticks the bus spent transmitting.
    pub busy: u64,
}

/// The transmission schedule of the (dual) intercluster bus.
#[derive(Debug)]
pub struct BusSchedule {
    free_at: VTime,
    active: BusKind,
    a: BusCounters,
    b: BusCounters,
    /// Whether each bus has failed (injected faults).
    a_failed: bool,
    b_failed: bool,
}

impl Default for BusSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl BusSchedule {
    /// A fresh schedule with bus A active.
    pub fn new() -> BusSchedule {
        BusSchedule {
            free_at: VTime::ZERO,
            active: BusKind::A,
            a: BusCounters::default(),
            b: BusCounters::default(),
            a_failed: false,
            b_failed: false,
        }
    }

    /// The currently active bus, or `None` if both have failed (a double
    /// fault outside the paper's fault model).
    pub fn active(&self) -> Option<BusKind> {
        match (self.a_failed, self.b_failed) {
            (false, _) if self.active == BusKind::A => Some(BusKind::A),
            (_, false) if self.active == BusKind::B => Some(BusKind::B),
            (false, _) => Some(BusKind::A),
            (_, false) => Some(BusKind::B),
            (true, true) => None,
        }
    }

    /// Injects a failure of one bus; traffic fails over to the other.
    ///
    /// Returns `true` if a healthy bus remains.
    pub fn fail(&mut self, bus: BusKind) -> bool {
        match bus {
            BusKind::A => self.a_failed = true,
            BusKind::B => self.b_failed = true,
        }
        if let Some(next) = self.active() {
            self.active = next;
            true
        } else {
            false
        }
    }

    /// Fails the currently active bus at `now`; pending reservations on
    /// it are void and the standby's timeline starts fresh at `now`.
    ///
    /// Returns the newly active bus, or `None` if the pair is exhausted.
    /// The caller owns retransmission of in-flight frames: every window
    /// granted by [`BusSchedule::reserve`] that had not completed by
    /// `now` must be re-reserved on the survivor.
    pub fn fail_active(&mut self, now: VTime) -> Option<BusKind> {
        let dead = self.active()?;
        self.fail(dead);
        let survivor = self.active()?;
        self.free_at = now;
        Some(survivor)
    }

    /// Reserves the next exclusive transmission window.
    ///
    /// `earliest` is when the transmitting executive is ready; `xmit` is
    /// the frame's transmission time (latency plus size cost, computed by
    /// the caller's cost model). Returns `(start, deliver_at)`; the frame
    /// reaches all its targets at `deliver_at`. Returns `None` if no bus
    /// is healthy.
    pub fn reserve(&mut self, earliest: VTime, xmit: Dur, bytes: usize) -> Option<(VTime, VTime)> {
        self.active()?;
        let start = self.free_at.max(earliest);
        let end = start + xmit;
        self.free_at = end;
        let c = match self.active {
            BusKind::A => &mut self.a,
            BusKind::B => &mut self.b,
        };
        c.frames += 1;
        c.bytes += bytes as u64;
        c.busy += xmit.as_ticks();
        Some((start, end))
    }

    /// When the bus next becomes free.
    pub fn free_at(&self) -> VTime {
        self.free_at
    }

    /// Traffic counters for one bus.
    pub fn counters(&self, bus: BusKind) -> BusCounters {
        match bus {
            BusKind::A => self.a,
            BusKind::B => self.b,
        }
    }

    /// Bus utilization over `[VTime::ZERO, now]` as busy-fraction ×1000.
    pub fn utilization_permille(&self, now: VTime) -> u64 {
        if now == VTime::ZERO {
            return 0;
        }
        let busy = self.a.busy + self.b.busy;
        busy * 1000 / now.ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_disjoint_and_ordered() {
        let mut bus = BusSchedule::new();
        let (s1, e1) = bus.reserve(VTime(0), Dur(10), 100).unwrap();
        let (s2, e2) = bus.reserve(VTime(0), Dur(5), 50).unwrap();
        let (s3, e3) = bus.reserve(VTime(100), Dur(5), 50).unwrap();
        assert_eq!((s1, e1), (VTime(0), VTime(10)));
        assert_eq!((s2, e2), (VTime(10), VTime(15)), "second frame waits for the first");
        assert_eq!((s3, e3), (VTime(100), VTime(105)), "idle gap respected");
    }

    #[test]
    fn counters_accumulate() {
        let mut bus = BusSchedule::new();
        bus.reserve(VTime(0), Dur(10), 100);
        bus.reserve(VTime(0), Dur(10), 100);
        let c = bus.counters(BusKind::A);
        assert_eq!(c.frames, 2);
        assert_eq!(c.bytes, 200);
        assert_eq!(c.busy, 20);
        assert_eq!(bus.counters(BusKind::B).frames, 0);
    }

    #[test]
    fn failover_switches_bus() {
        let mut bus = BusSchedule::new();
        assert!(bus.fail(BusKind::A));
        assert_eq!(bus.active(), Some(BusKind::B));
        bus.reserve(VTime(0), Dur(10), 1);
        assert_eq!(bus.counters(BusKind::B).frames, 1);
        assert!(!bus.fail(BusKind::B), "double bus fault exhausts the pair");
        assert!(bus.reserve(VTime(0), Dur(1), 1).is_none());
    }

    #[test]
    fn fail_active_resets_standby_timeline() {
        let mut bus = BusSchedule::new();
        // A long frame occupies bus A far into the future.
        bus.reserve(VTime(0), Dur(1_000), 64);
        assert_eq!(bus.free_at(), VTime(1_000));
        // A dies mid-window; B takes over with a clean schedule.
        assert_eq!(bus.fail_active(VTime(400)), Some(BusKind::B));
        assert_eq!(bus.free_at(), VTime(400), "standby is not encumbered by A's windows");
        let (s, e) = bus.reserve(VTime(0), Dur(10), 64).unwrap();
        assert_eq!((s, e), (VTime(400), VTime(410)));
        assert_eq!(bus.counters(BusKind::B).frames, 1);
        // The second failure exhausts the pair.
        assert_eq!(bus.fail_active(VTime(500)), None);
        assert!(bus.reserve(VTime(0), Dur(1), 1).is_none());
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut bus = BusSchedule::new();
        bus.reserve(VTime(0), Dur(250), 1);
        assert_eq!(bus.utilization_permille(VTime(1000)), 250);
        assert_eq!(bus.utilization_permille(VTime::ZERO), 0);
    }
}
