//! Bus serialization and the dual-bus model.
//!
//! §7.4.2: "Since a cluster may transmit or receive only one message at a
//! time, messages are never interleaved." The schedule grants each frame
//! an exclusive transmission window; the frame is *delivered to every
//! target cluster at the window's end*, in one simulation event, which
//! realizes both atomicity properties of §5.1 structurally:
//! all-or-none (one event delivers to all live targets) and
//! non-interleaving (windows are disjoint and ordered).
//!
//! The Auragen 4000 has a **dual** intercluster bus; we model the pair as
//! an active bus plus a cold standby with instant failover and a per-bus
//! transmission ledger.

use std::collections::BTreeMap;

use auros_sim::{Dur, VTime};

/// Which physical bus of the dual pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusKind {
    /// Bus A (initially active).
    A,
    /// Bus B (standby).
    B,
}

/// Per-bus traffic counters.
///
/// A frame is counted in `frames`/`bytes` exactly once — on its first
/// transmission. Every re-transmission of the same frame (failover or
/// protocol retry) is counted in `retries` instead, so delivered-traffic
/// figures are not inflated by the recovery machinery.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusCounters {
    /// Distinct frames transmitted (first attempts only).
    pub frames: u64,
    /// Payload bytes carried by first attempts.
    pub bytes: u64,
    /// Ticks the bus spent transmitting (all attempts).
    pub busy: u64,
    /// Re-transmission windows granted (failover or protocol retry).
    pub retries: u64,
}

impl From<BusKind> for auros_sim::trace::TraceBus {
    fn from(b: BusKind) -> auros_sim::trace::TraceBus {
        match b {
            BusKind::A => auros_sim::trace::TraceBus::A,
            BusKind::B => auros_sim::trace::TraceBus::B,
        }
    }
}

/// A transient fault the wire inflicts on one transmission window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireFault {
    /// The frame vanishes: no target receives it.
    Drop,
    /// The frame arrives with a mangled header; receiver checksums
    /// catch it.
    Corrupt,
    /// The frame arrives twice.
    Duplicate,
    /// The frame arrives late by the given extra ticks.
    Delay(Dur),
}

impl From<WireFault> for auros_sim::trace::TraceWireFault {
    fn from(w: WireFault) -> auros_sim::trace::TraceWireFault {
        match w {
            WireFault::Drop => auros_sim::trace::TraceWireFault::Drop,
            WireFault::Corrupt => auros_sim::trace::TraceWireFault::Corrupt,
            WireFault::Duplicate => auros_sim::trace::TraceWireFault::Duplicate,
            WireFault::Delay(d) => auros_sim::trace::TraceWireFault::Delay(d.as_ticks()),
        }
    }
}

/// An exclusive transmission window granted by [`BusSchedule::reserve`].
#[derive(Clone, Copy, Debug)]
pub struct Reservation {
    /// When transmission begins.
    pub start: VTime,
    /// When the frame reaches all targets (absent faults).
    pub deliver_at: VTime,
    /// The bus that carries this window.
    pub bus: BusKind,
    /// A transient fault injected into this window, if any.
    pub fault: Option<WireFault>,
}

/// A window during which one bus mangles every frame it carries.
#[derive(Clone, Copy, Debug)]
struct FlakyWindow {
    from: VTime,
    until: VTime,
    bus: BusKind,
}

/// Ticks per flaky-index bucket (as a shift): windows are registered in
/// every 4096-tick bucket they overlap, so a grant consults exactly one
/// bucket instead of scanning every window ever declared.
const FLAKY_BUCKET_BITS: u32 = 12;

/// Buckets beyond which a window is "wide" and kept in a small
/// linearly-scanned side list instead of being splatted across the index.
const FLAKY_WIDE_BUCKETS: u64 = 4096;

fn bus_code(bus: BusKind) -> u8 {
    match bus {
        BusKind::A => 0,
        BusKind::B => 1,
    }
}

/// The transmission schedule of the (dual) intercluster bus.
#[derive(Debug)]
pub struct BusSchedule {
    free_at: VTime,
    active: BusKind,
    a: BusCounters,
    b: BusCounters,
    /// Whether each bus has failed (injected faults).
    a_failed: bool,
    b_failed: bool,
    /// One-shot armed faults: the first window starting at or after the
    /// arm time absorbs the fault. Kept sorted by arm time, so only the
    /// front can match a grant — the per-grant check is O(1).
    armed: Vec<(VTime, WireFault)>,
    /// Sustained flaky windows (deterministic per-bus fault storms).
    flaky: Vec<FlakyWindow>,
    /// Index of `flaky` by (bus, time bucket): a grant consults one
    /// bucket's (typically empty or one-element) id list.
    flaky_index: BTreeMap<(u8, u64), Vec<u32>>,
    /// Windows too wide for per-bucket registration; scanned linearly.
    flaky_wide: Vec<u32>,
    /// How many grants actually probed the fault structures. Fault-free
    /// configurations must keep this at zero (asserted by tests): the
    /// hot path pays nothing for the fault machinery's existence.
    fault_probes: u64,
    /// Cycles the fault kind injected inside flaky windows.
    flaky_seq: u64,
    /// Quarantine flags: the bus is healthy hardware-wise but has been
    /// benched by the kernel after repeated wire faults.
    a_quarantined: bool,
    b_quarantined: bool,
    /// Consecutive faulted windows per bus (reset by a clean window).
    a_consecutive_faults: u32,
    b_consecutive_faults: u32,
}

impl Default for BusSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl BusSchedule {
    /// A fresh schedule with bus A active.
    pub fn new() -> BusSchedule {
        BusSchedule {
            free_at: VTime::ZERO,
            active: BusKind::A,
            a: BusCounters::default(),
            b: BusCounters::default(),
            a_failed: false,
            b_failed: false,
            armed: Vec::new(),
            flaky: Vec::new(),
            flaky_index: BTreeMap::new(),
            flaky_wide: Vec::new(),
            fault_probes: 0,
            flaky_seq: 0,
            a_quarantined: false,
            b_quarantined: false,
            a_consecutive_faults: 0,
            b_consecutive_faults: 0,
        }
    }

    fn failed(&self, bus: BusKind) -> bool {
        match bus {
            BusKind::A => self.a_failed,
            BusKind::B => self.b_failed,
        }
    }

    fn other(bus: BusKind) -> BusKind {
        match bus {
            BusKind::A => BusKind::B,
            BusKind::B => BusKind::A,
        }
    }

    /// The currently active bus, or `None` if both have failed (a double
    /// fault outside the paper's fault model).
    pub fn active(&self) -> Option<BusKind> {
        match (self.a_failed, self.b_failed) {
            (false, _) if self.active == BusKind::A => Some(BusKind::A),
            (_, false) if self.active == BusKind::B => Some(BusKind::B),
            (false, _) => Some(BusKind::A),
            (_, false) => Some(BusKind::B),
            (true, true) => None,
        }
    }

    /// Injects a failure of one bus; traffic fails over to the other.
    ///
    /// Returns `true` if a healthy bus remains.
    pub fn fail(&mut self, bus: BusKind) -> bool {
        match bus {
            BusKind::A => self.a_failed = true,
            BusKind::B => self.b_failed = true,
        }
        // A failed bus needs no quarantine, and stops being probed.
        self.set_quarantined(bus, false);
        if let Some(next) = self.active() {
            self.active = next;
            // Necessity overrides quarantine: with only one bus left,
            // a benched survivor goes back into service.
            self.set_quarantined(next, false);
            true
        } else {
            false
        }
    }

    /// Fails the currently active bus at `now`; pending reservations on
    /// it are void and the standby's timeline starts fresh at `now`.
    ///
    /// Returns the newly active bus, or `None` if the pair is exhausted.
    /// The caller owns retransmission of in-flight frames: every window
    /// granted by [`BusSchedule::reserve`] that had not completed by
    /// `now` must be re-reserved on the survivor.
    pub fn fail_active(&mut self, now: VTime) -> Option<BusKind> {
        let dead = self.active()?;
        self.fail(dead);
        let survivor = self.active()?;
        self.free_at = now;
        Some(survivor)
    }

    /// Reserves the next exclusive transmission window for a frame's
    /// *first* attempt.
    ///
    /// `earliest` is when the transmitting executive is ready; `xmit` is
    /// the frame's transmission time (latency plus size cost, computed by
    /// the caller's cost model). The frame reaches all its targets at
    /// `Reservation::deliver_at` unless the window carries an injected
    /// fault. Returns `None` if no bus is healthy.
    pub fn reserve(&mut self, earliest: VTime, xmit: Dur, bytes: usize) -> Option<Reservation> {
        self.grant(earliest, xmit, bytes, false)
    }

    /// Reserves a window for a *re-transmission* of a frame already
    /// counted by [`BusSchedule::reserve`]. Accounted under
    /// `BusCounters::retries`, never under `frames`/`bytes`.
    pub fn reserve_retry(
        &mut self,
        earliest: VTime,
        xmit: Dur,
        bytes: usize,
    ) -> Option<Reservation> {
        self.grant(earliest, xmit, bytes, true)
    }

    fn grant(
        &mut self,
        earliest: VTime,
        xmit: Dur,
        bytes: usize,
        retry: bool,
    ) -> Option<Reservation> {
        let bus = self.active()?;
        self.active = bus;
        let start = self.free_at.max(earliest);
        let end = start + xmit;
        self.free_at = end;
        let fault = self.pick_fault(bus, start);
        let c = match bus {
            BusKind::A => &mut self.a,
            BusKind::B => &mut self.b,
        };
        if retry {
            c.retries += 1;
        } else {
            c.frames += 1;
            c.bytes += bytes as u64;
        }
        c.busy += xmit.as_ticks();
        Some(Reservation { start, deliver_at: end, bus, fault })
    }

    /// Arms a one-shot transient fault: the first window whose start is
    /// at or after `at` absorbs it.
    pub fn arm_fault(&mut self, at: VTime, fault: WireFault) {
        self.armed.push((at, fault));
        self.armed.sort_by_key(|(t, _)| *t);
    }

    /// Declares `[from, until)` a flaky window on `bus`: every frame it
    /// carries with a window start inside the span is mangled, cycling
    /// deterministically through drop/corrupt/drop/duplicate.
    pub fn add_flaky_window(&mut self, from: VTime, until: VTime, bus: BusKind) {
        let id = self.flaky.len() as u32;
        self.flaky.push(FlakyWindow { from, until, bus });
        if from >= until {
            return; // Empty span: never matches, never indexed.
        }
        let first = from.ticks() >> FLAKY_BUCKET_BITS;
        let last = (until.ticks() - 1) >> FLAKY_BUCKET_BITS;
        if last - first >= FLAKY_WIDE_BUCKETS {
            self.flaky_wide.push(id);
            return;
        }
        for bucket in first..=last {
            self.flaky_index.entry((bus_code(bus), bucket)).or_default().push(id);
        }
    }

    /// Whether any flaky window on `bus` covers `at`. One bucket lookup
    /// plus the (normally empty) wide list — independent of how many
    /// windows a long campaign has declared.
    fn flaky_covers(&self, bus: BusKind, at: VTime) -> bool {
        let hit = |&id: &u32| {
            let w = &self.flaky[id as usize];
            w.from <= at && at < w.until
        };
        let key = (bus_code(bus), at.ticks() >> FLAKY_BUCKET_BITS);
        self.flaky_index.get(&key).is_some_and(|ids| ids.iter().any(hit))
            || self.flaky_wide.iter().any(|&id| self.flaky[id as usize].bus == bus && hit(&id))
    }

    fn pick_fault(&mut self, bus: BusKind, start: VTime) -> Option<WireFault> {
        if self.armed.is_empty() && self.flaky.is_empty() {
            // The fault-free fast path: no probe of any fault structure.
            self.note_fault(bus, false);
            return None;
        }
        self.fault_probes += 1;
        // One-shot armed faults fire on whichever bus carries the frame.
        // `armed` is sorted by arm time, so if any entry matches the
        // earliest-armed one does: a front check replaces the old scan.
        if self.armed.first().is_some_and(|(t, _)| *t <= start) {
            let (_, fault) = self.armed.remove(0);
            self.note_fault(bus, true);
            return Some(fault);
        }
        if self.flaky_covers(bus, start) {
            const CYCLE: [WireFault; 4] =
                [WireFault::Drop, WireFault::Corrupt, WireFault::Drop, WireFault::Duplicate];
            let fault = CYCLE[(self.flaky_seq % 4) as usize];
            self.flaky_seq += 1;
            self.note_fault(bus, true);
            return Some(fault);
        }
        self.note_fault(bus, false);
        None
    }

    /// Grants that probed the fault structures (zero in fault-free runs).
    pub fn fault_probes(&self) -> u64 {
        self.fault_probes
    }

    fn note_fault(&mut self, bus: BusKind, faulted: bool) {
        let c = match bus {
            BusKind::A => &mut self.a_consecutive_faults,
            BusKind::B => &mut self.b_consecutive_faults,
        };
        if faulted {
            *c += 1;
        } else {
            *c = 0;
        }
    }

    /// Consecutive faulted windows on `bus` (resets on a clean window).
    pub fn consecutive_faults(&self, bus: BusKind) -> u32 {
        match bus {
            BusKind::A => self.a_consecutive_faults,
            BusKind::B => self.b_consecutive_faults,
        }
    }

    fn set_quarantined(&mut self, bus: BusKind, v: bool) {
        match bus {
            BusKind::A => self.a_quarantined = v,
            BusKind::B => self.b_quarantined = v,
        }
    }

    /// Whether `bus` is currently benched by quarantine.
    pub fn is_quarantined(&self, bus: BusKind) -> bool {
        match bus {
            BusKind::A => self.a_quarantined,
            BusKind::B => self.b_quarantined,
        }
    }

    /// Benches `bus` after repeated wire faults and moves traffic to the
    /// standby, whose timeline starts fresh at `now`. Refuses (returns
    /// `None`) when no healthy, unquarantined standby exists — with one
    /// bus left, a misbehaving wire beats no wire.
    pub fn quarantine(&mut self, bus: BusKind, now: VTime) -> Option<BusKind> {
        let standby = Self::other(bus);
        if self.failed(standby) || self.is_quarantined(standby) || self.failed(bus) {
            return None;
        }
        self.set_quarantined(bus, true);
        self.note_fault(bus, false);
        self.active = standby;
        self.free_at = now;
        Some(standby)
    }

    /// Returns a quarantined bus to standby duty after a clean probe.
    pub fn heal(&mut self, bus: BusKind) {
        self.set_quarantined(bus, false);
        self.note_fault(bus, false);
    }

    /// Whether a probe frame sent on `bus` at `now` would survive: the
    /// bus is not failed and no flaky window covers `now`.
    pub fn probe_ok(&self, bus: BusKind, now: VTime) -> bool {
        !self.failed(bus) && !self.flaky_covers(bus, now)
    }

    /// Accounts a gateway-forwarded frame's occupancy of this segment's
    /// bus (fleet configurations): the forwarded copy takes the next
    /// window at or after `earliest` on the active bus. No fault pick —
    /// the fault, if any, was realized on the sender's home segment —
    /// and no frame/retry count: the copy is billed as busy time only.
    /// A segment with no healthy bus absorbs nothing (the gateway's
    /// delivery instant is fixed by the home window either way).
    pub fn account_forward(&mut self, earliest: VTime, xmit: Dur) {
        let Some(bus) = self.active() else { return };
        let start = self.free_at.max(earliest);
        self.free_at = start + xmit;
        let c = match bus {
            BusKind::A => &mut self.a,
            BusKind::B => &mut self.b,
        };
        c.busy += xmit.as_ticks();
    }

    /// When the bus next becomes free.
    pub fn free_at(&self) -> VTime {
        self.free_at
    }

    /// Traffic counters for one bus.
    pub fn counters(&self, bus: BusKind) -> BusCounters {
        match bus {
            BusKind::A => self.a,
            BusKind::B => self.b,
        }
    }

    /// Bus utilization over `[VTime::ZERO, now]` as busy-fraction ×1000.
    pub fn utilization_permille(&self, now: VTime) -> u64 {
        if now == VTime::ZERO {
            return 0;
        }
        let busy = self.a.busy + self.b.busy;
        busy * 1000 / now.ticks()
    }

    /// Publishes both buses' traffic ledgers into the metrics registry.
    pub fn publish_metrics(&self, reg: &mut auros_sim::MetricsRegistry) {
        self.publish_metrics_prefixed("", reg);
    }

    /// [`Self::publish_metrics`] under a name prefix (fleet fabrics
    /// publish each segment as `segment.<i>.bus.a.frames`, …).
    pub fn publish_metrics_prefixed(&self, prefix: &str, reg: &mut auros_sim::MetricsRegistry) {
        for (name, c, failed, quarantined) in [
            ("bus.a", &self.a, self.a_failed, self.a_quarantined),
            ("bus.b", &self.b, self.b_failed, self.b_quarantined),
        ] {
            reg.set_owned(format!("{prefix}{name}.frames"), c.frames);
            reg.set_owned(format!("{prefix}{name}.bytes"), c.bytes);
            reg.set_owned(format!("{prefix}{name}.busy_ticks"), c.busy);
            reg.set_owned(format!("{prefix}{name}.retries"), c.retries);
            reg.set_owned(format!("{prefix}{name}.failed"), failed as u64);
            reg.set_owned(format!("{prefix}{name}.quarantined"), quarantined as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(r: Reservation) -> (VTime, VTime) {
        (r.start, r.deliver_at)
    }

    #[test]
    fn windows_are_disjoint_and_ordered() {
        let mut bus = BusSchedule::new();
        let w1 = window(bus.reserve(VTime(0), Dur(10), 100).unwrap());
        let w2 = window(bus.reserve(VTime(0), Dur(5), 50).unwrap());
        let w3 = window(bus.reserve(VTime(100), Dur(5), 50).unwrap());
        assert_eq!(w1, (VTime(0), VTime(10)));
        assert_eq!(w2, (VTime(10), VTime(15)), "second frame waits for the first");
        assert_eq!(w3, (VTime(100), VTime(105)), "idle gap respected");
    }

    #[test]
    fn counters_accumulate() {
        let mut bus = BusSchedule::new();
        bus.reserve(VTime(0), Dur(10), 100);
        bus.reserve(VTime(0), Dur(10), 100);
        let c = bus.counters(BusKind::A);
        assert_eq!(c.frames, 2);
        assert_eq!(c.bytes, 200);
        assert_eq!(c.busy, 20);
        assert_eq!(bus.counters(BusKind::B).frames, 0);
    }

    #[test]
    fn failover_switches_bus() {
        let mut bus = BusSchedule::new();
        assert!(bus.fail(BusKind::A));
        assert_eq!(bus.active(), Some(BusKind::B));
        bus.reserve(VTime(0), Dur(10), 1);
        assert_eq!(bus.counters(BusKind::B).frames, 1);
        assert!(!bus.fail(BusKind::B), "double bus fault exhausts the pair");
        assert!(bus.reserve(VTime(0), Dur(1), 1).is_none());
    }

    #[test]
    fn fail_active_resets_standby_timeline() {
        let mut bus = BusSchedule::new();
        // A long frame occupies bus A far into the future.
        bus.reserve(VTime(0), Dur(1_000), 64);
        assert_eq!(bus.free_at(), VTime(1_000));
        // A dies mid-window; B takes over with a clean schedule.
        assert_eq!(bus.fail_active(VTime(400)), Some(BusKind::B));
        assert_eq!(bus.free_at(), VTime(400), "standby is not encumbered by A's windows");
        let w = window(bus.reserve(VTime(0), Dur(10), 64).unwrap());
        assert_eq!(w, (VTime(400), VTime(410)));
        assert_eq!(bus.counters(BusKind::B).frames, 1);
        // The second failure exhausts the pair.
        assert_eq!(bus.fail_active(VTime(500)), None);
        assert!(bus.reserve(VTime(0), Dur(1), 1).is_none());
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut bus = BusSchedule::new();
        bus.reserve(VTime(0), Dur(250), 1);
        assert_eq!(bus.utilization_permille(VTime(1000)), 250);
        assert_eq!(bus.utilization_permille(VTime::ZERO), 0);
    }

    #[test]
    fn retries_do_not_inflate_delivered_traffic() {
        let mut bus = BusSchedule::new();
        bus.reserve(VTime(0), Dur(10), 100);
        bus.reserve_retry(VTime(0), Dur(10), 100);
        bus.reserve_retry(VTime(0), Dur(10), 100);
        let c = bus.counters(BusKind::A);
        assert_eq!(c.frames, 1, "a frame is delivered traffic once");
        assert_eq!(c.bytes, 100, "retry bytes are not billed as traffic");
        assert_eq!(c.retries, 2);
        assert_eq!(c.busy, 30, "the wire was busy for every attempt");
    }

    #[test]
    fn armed_fault_hits_first_window_at_or_after_arm_time() {
        let mut bus = BusSchedule::new();
        bus.arm_fault(VTime(15), WireFault::Drop);
        let r1 = bus.reserve(VTime(0), Dur(10), 1).unwrap();
        assert_eq!(r1.fault, None, "window before the arm time is clean");
        let r2 = bus.reserve(VTime(0), Dur(10), 1).unwrap();
        assert_eq!(r2.fault, None, "start 10 < 15: still clean");
        let r3 = bus.reserve(VTime(0), Dur(10), 1).unwrap();
        assert_eq!(r3.fault, Some(WireFault::Drop), "start 20 >= 15 absorbs the fault");
        let r4 = bus.reserve(VTime(0), Dur(10), 1).unwrap();
        assert_eq!(r4.fault, None, "one-shot: consumed");
    }

    #[test]
    fn flaky_window_cycles_fault_kinds_deterministically() {
        let mut bus = BusSchedule::new();
        bus.add_flaky_window(VTime(0), VTime(100), BusKind::A);
        let kinds: Vec<_> =
            (0..4).map(|_| bus.reserve(VTime(0), Dur(10), 1).unwrap().fault).collect();
        assert_eq!(
            kinds,
            vec![
                Some(WireFault::Drop),
                Some(WireFault::Corrupt),
                Some(WireFault::Drop),
                Some(WireFault::Duplicate),
            ]
        );
        assert_eq!(bus.consecutive_faults(BusKind::A), 4);
        // Past the window the bus is clean again and the streak resets.
        let r = bus.reserve(VTime(100), Dur(10), 1).unwrap();
        assert_eq!(r.fault, None);
        assert_eq!(bus.consecutive_faults(BusKind::A), 0);
    }

    #[test]
    fn flaky_window_does_not_touch_the_other_bus() {
        let mut bus = BusSchedule::new();
        bus.add_flaky_window(VTime(0), VTime(1_000), BusKind::B);
        let r = bus.reserve(VTime(0), Dur(10), 1).unwrap();
        assert_eq!(r.bus, BusKind::A);
        assert_eq!(r.fault, None);
    }

    #[test]
    fn quarantine_moves_traffic_and_heal_restores_standby() {
        let mut bus = BusSchedule::new();
        bus.reserve(VTime(0), Dur(100), 1);
        assert_eq!(bus.quarantine(BusKind::A, VTime(40)), Some(BusKind::B));
        assert!(bus.is_quarantined(BusKind::A));
        let r = bus.reserve(VTime(0), Dur(10), 1).unwrap();
        assert_eq!(r.bus, BusKind::B, "traffic moved to the standby");
        assert_eq!(r.start, VTime(40), "standby timeline starts at the quarantine instant");
        // Double-benching is refused once the standby is the only option.
        assert_eq!(bus.quarantine(BusKind::B, VTime(50)), None);
        bus.heal(BusKind::A);
        assert!(!bus.is_quarantined(BusKind::A));
        assert_eq!(bus.active(), Some(BusKind::B), "healed bus returns as standby, not active");
    }

    #[test]
    fn standby_failure_lifts_quarantine_out_of_necessity() {
        let mut bus = BusSchedule::new();
        assert_eq!(bus.quarantine(BusKind::A, VTime(10)), Some(BusKind::B));
        assert!(bus.fail(BusKind::B), "quarantined A still counts as healthy");
        assert!(!bus.is_quarantined(BusKind::A), "necessity overrides quarantine");
        let r = bus.reserve(VTime(0), Dur(10), 1).unwrap();
        assert_eq!(r.bus, BusKind::A);
    }

    #[test]
    fn fault_free_grants_probe_no_fault_structures() {
        let mut bus = BusSchedule::new();
        for _ in 0..10_000 {
            bus.reserve(VTime(0), Dur(10), 16);
        }
        assert_eq!(bus.fault_probes(), 0, "fault-free grants must not touch fault state");
        // Arming anything turns probing on — and the count stays honest.
        bus.arm_fault(VTime(0), WireFault::Drop);
        bus.reserve(VTime(0), Dur(10), 16);
        assert_eq!(bus.fault_probes(), 1);
    }

    #[test]
    fn flaky_index_matches_spans_crossing_bucket_boundaries() {
        let mut bus = BusSchedule::new();
        // Spans a 4096-tick bucket boundary; matched from both sides.
        bus.add_flaky_window(VTime(4000), VTime(4200), BusKind::A);
        assert!(!bus.probe_ok(BusKind::A, VTime(4095)));
        assert!(!bus.probe_ok(BusKind::A, VTime(4100)));
        assert!(bus.probe_ok(BusKind::A, VTime(3999)));
        assert!(bus.probe_ok(BusKind::A, VTime(4200)));
        // A very wide window falls back to the wide list but still works.
        bus.add_flaky_window(VTime(0), VTime(u64::MAX / 2), BusKind::B);
        assert!(!bus.probe_ok(BusKind::B, VTime(123_456_789)));
        assert!(bus.probe_ok(BusKind::B, VTime(u64::MAX / 2)));
        // Empty spans never match anything.
        bus.add_flaky_window(VTime(500), VTime(500), BusKind::A);
        assert!(bus.probe_ok(BusKind::A, VTime(500)));
    }

    #[test]
    fn probe_ok_respects_failures_and_flaky_windows() {
        let mut bus = BusSchedule::new();
        bus.add_flaky_window(VTime(100), VTime(200), BusKind::A);
        assert!(bus.probe_ok(BusKind::A, VTime(50)));
        assert!(!bus.probe_ok(BusKind::A, VTime(150)), "probe inside the storm fails");
        assert!(bus.probe_ok(BusKind::A, VTime(200)), "window end is exclusive");
        assert!(bus.probe_ok(BusKind::B, VTime(150)));
        bus.fail(BusKind::B);
        assert!(!bus.probe_ok(BusKind::B, VTime(150)), "a failed bus never probes clean");
    }
}
