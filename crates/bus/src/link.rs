//! Link-level sequencing: duplicate suppression and FIFO restoration.
//!
//! §5.1/§7.4.2 assume the hardware bus delivers every frame exactly
//! once, in transmission order. A lossy wire with retransmission breaks
//! both assumptions *below* the abstraction: a retransmitted frame may
//! arrive twice, and a delayed frame may arrive after its successors.
//! The [`LinkLedger`] re-earns the abstraction: each (sender cluster,
//! destination cluster) link carries a monotonically increasing sequence
//! number, and the receiver delivers a frame only when every live target
//! is seeing exactly the sequence number it expects next. Frames behind
//! a gap are held; frames already consumed are suppressed. Because a
//! frame is classified *as a whole* (all targets agree or none deliver),
//! the all-or-none and non-interleaving invariants survive the faults.

use std::collections::BTreeMap;

/// Receiver verdict for an arriving frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameClass {
    /// Every live target expects exactly these sequence numbers: deliver.
    Ready,
    /// Every live target has already consumed these sequence numbers: a
    /// retransmission or wire duplicate; suppress.
    Duplicate,
    /// Some live target has a gap before these sequence numbers: hold
    /// until the missing frame arrives (or is abandoned).
    Hold,
}

/// Per-link sequence bookkeeping, keyed by (sender, destination) cluster.
#[derive(Debug, Default)]
pub struct LinkLedger {
    /// Next sequence number to assign on each link (sender side).
    tx: BTreeMap<(u16, u16), u64>,
    /// Next sequence number expected on each link (receiver side).
    expected: BTreeMap<(u16, u16), u64>,
}

impl LinkLedger {
    /// Assigns sequence numbers for a frame from `src` to the given
    /// destination clusters, in header order. A destination that appears
    /// twice in one frame receives consecutive numbers.
    pub fn stamp(&mut self, src: u16, dests: impl Iterator<Item = u16>) -> Vec<u64> {
        dests
            .map(|dst| {
                let next = self.tx.entry((src, dst)).or_insert(0);
                let seq = *next;
                *next += 1;
                seq
            })
            .collect()
    }

    /// Classifies an arriving frame given its `(destination, seq)` pairs.
    /// Only targets for which `live` holds participate: a dead cluster
    /// can neither demand in-order delivery nor veto it. An empty pair
    /// list (or an all-dead target set) is `Ready`: the delivery loop
    /// will skip the dead targets itself.
    pub fn classify(
        &self,
        src: u16,
        pairs: &[(u16, u64)],
        mut live: impl FnMut(u16) -> bool,
    ) -> FrameClass {
        // A frame can address the same destination twice; simulate
        // sequential consumption with per-destination offsets.
        let mut offset: BTreeMap<u16, u64> = BTreeMap::new();
        let mut dup = 0usize;
        let mut considered = 0usize;
        for &(dst, seq) in pairs {
            let off = offset.entry(dst).or_insert(0);
            let expected = self.expected.get(&(src, dst)).copied().unwrap_or(0) + *off;
            *off += 1;
            if !live(dst) {
                continue;
            }
            considered += 1;
            if seq > expected {
                return FrameClass::Hold;
            }
            if seq < expected {
                dup += 1;
            }
        }
        if considered > 0 && dup == considered {
            FrameClass::Duplicate
        } else {
            FrameClass::Ready
        }
    }

    /// Records a frame as consumed: each link's expectation advances past
    /// the frame's sequence numbers (dead targets included, so a later
    /// restore does not stall on frames it never needed).
    pub fn advance(&mut self, src: u16, pairs: &[(u16, u64)]) {
        for &(dst, seq) in pairs {
            let e = self.expected.entry((src, dst)).or_insert(0);
            *e = (*e).max(seq + 1);
        }
    }

    /// Consumes a frame *without* delivery — it was lost for good
    /// (abandoned retransmission, double bus failure, source crashed
    /// before transmission). Advancing the expectation keeps the loss
    /// from stalling every later frame on the same links.
    pub fn skip(&mut self, src: u16, pairs: &[(u16, u64)]) {
        self.advance(src, pairs);
    }

    /// Re-aligns every link into `dst` with the sender side, as part of
    /// cluster restore: the rebuilt cluster has no delivery history, so
    /// it expects only traffic stamped from now on.
    pub fn resync_into(&mut self, dst: u16) {
        for (&(s, d), &tx) in &self.tx {
            if d == dst {
                self.expected.insert((s, d), tx);
            }
        }
    }

    /// Next expected sequence on one link (receiver view); for tests.
    pub fn next_expected(&self, src: u16, dst: u16) -> u64 {
        self.expected.get(&(src, dst)).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_live(_: u16) -> bool {
        true
    }

    #[test]
    fn in_order_frames_are_ready() {
        let mut l = LinkLedger::default();
        let s0 = l.stamp(0, [1u16, 2].into_iter());
        let s1 = l.stamp(0, [1u16, 2].into_iter());
        assert_eq!(s0, vec![0, 0]);
        assert_eq!(s1, vec![1, 1]);
        let p0 = [(1u16, 0u64), (2, 0)];
        assert_eq!(l.classify(0, &p0, all_live), FrameClass::Ready);
        l.advance(0, &p0);
        let p1 = [(1u16, 1u64), (2, 1)];
        assert_eq!(l.classify(0, &p1, all_live), FrameClass::Ready);
    }

    #[test]
    fn gap_holds_and_old_frames_suppress() {
        let mut l = LinkLedger::default();
        l.stamp(0, [1u16].into_iter());
        l.stamp(0, [1u16].into_iter());
        assert_eq!(l.classify(0, &[(1, 1)], all_live), FrameClass::Hold, "seq 1 before seq 0");
        l.advance(0, &[(1, 0)]);
        l.advance(0, &[(1, 1)]);
        assert_eq!(l.classify(0, &[(1, 0)], all_live), FrameClass::Duplicate);
        assert_eq!(l.classify(0, &[(1, 1)], all_live), FrameClass::Duplicate);
    }

    #[test]
    fn dead_targets_neither_demand_nor_veto() {
        let mut l = LinkLedger::default();
        l.stamp(0, [1u16, 2].into_iter());
        l.stamp(0, [1u16, 2].into_iter());
        // Frame 1 arrives first; cluster 1 is dead, cluster 2 has a gap.
        let live = |c: u16| c != 1;
        assert_eq!(l.classify(0, &[(1, 1), (2, 1)], live), FrameClass::Hold);
        // Once the gap closes on the live target, the dead one is moot.
        l.advance(0, &[(1, 0), (2, 0)]);
        assert_eq!(l.classify(0, &[(1, 1), (2, 1)], live), FrameClass::Ready);
    }

    #[test]
    fn repeated_destination_gets_consecutive_seqs() {
        let mut l = LinkLedger::default();
        let s = l.stamp(0, [1u16, 1].into_iter());
        assert_eq!(s, vec![0, 1]);
        let pairs = [(1u16, 0u64), (1, 1)];
        assert_eq!(l.classify(0, &pairs, all_live), FrameClass::Ready);
        l.advance(0, &pairs);
        assert_eq!(l.classify(0, &pairs, all_live), FrameClass::Duplicate);
        assert_eq!(l.next_expected(0, 1), 2);
    }

    #[test]
    fn skip_unblocks_later_frames() {
        let mut l = LinkLedger::default();
        l.stamp(0, [1u16].into_iter());
        l.stamp(0, [1u16].into_iter());
        assert_eq!(l.classify(0, &[(1, 1)], all_live), FrameClass::Hold);
        l.skip(0, &[(1, 0)]);
        assert_eq!(l.classify(0, &[(1, 1)], all_live), FrameClass::Ready);
    }

    #[test]
    fn resync_into_forgives_lost_history() {
        let mut l = LinkLedger::default();
        l.stamp(0, [1u16].into_iter());
        l.stamp(0, [1u16].into_iter());
        l.stamp(2, [1u16].into_iter());
        l.resync_into(1);
        assert_eq!(l.next_expected(0, 1), 2);
        assert_eq!(l.next_expected(2, 1), 1);
        assert_eq!(l.classify(0, &[(1, 0)], all_live), FrameClass::Duplicate);
        let s = l.stamp(0, [1u16].into_iter());
        assert_eq!(l.classify(0, &[(1, s[0])], all_live), FrameClass::Ready);
    }
}
