//! Identifier types shared across the system.

use std::fmt;

/// A processing unit (the paper's *cluster*).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterId(pub u16);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A globally unique process identifier.
///
/// Standard UNIX pids index a local process table and are therefore
/// *environmental* — a backup in another cluster would see a different
/// value. §7.5.1: "We have made the process id into a globally unique
/// identifier which is sent to the parent's backup on fork, and to the
/// backup itself on first sync."
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a routing-table entry within one cluster's routing table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntryId(pub u32);

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A channel file descriptor, local to one process (§7.4.1 keeps the UNIX
/// term even though channels need not represent files).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// A signal number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sig(pub u8);

impl Sig {
    /// Interrupt from a terminal (control-C), §7.5.2.
    pub const INT: Sig = Sig(2);
    /// Alarm-clock signal requested via the `alarm` call.
    pub const ALRM: Sig = Sig(14);
    /// Unconditional termination.
    pub const KILL: Sig = Sig(9);
    /// User-defined signal.
    pub const USR1: Sig = Sig(10);
}

impl fmt::Display for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Sig::INT => write!(f, "SIGINT"),
            Sig::ALRM => write!(f, "SIGALRM"),
            Sig::KILL => write!(f, "SIGKILL"),
            Sig::USR1 => write!(f, "SIGUSR1"),
            Sig(n) => write!(f, "SIG{n}"),
        }
    }
}

/// A rendezvous name for opening channels (§7.4.1).
///
/// Names beginning with `/` refer to file-system objects; other names are
/// pure channel rendezvous points the file server pairs up.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelName(pub String);

impl ChannelName {
    /// Builds a name from anything string-like.
    pub fn new(s: impl Into<String>) -> ChannelName {
        ChannelName(s.into())
    }

    /// Returns `true` if the name refers to a file-system path.
    pub fn is_file(&self) -> bool {
        self.0.starts_with('/')
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ChannelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ChannelName {
    fn from(s: &str) -> ChannelName {
        ChannelName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ClusterId(3).to_string(), "c3");
        assert_eq!(Pid(12).to_string(), "p12");
        assert_eq!(EntryId(7).to_string(), "e7");
        assert_eq!(Fd(1).to_string(), "fd1");
        assert_eq!(Sig::INT.to_string(), "SIGINT");
        assert_eq!(Sig(33).to_string(), "SIG33");
    }

    #[test]
    fn file_names_start_with_slash() {
        assert!(ChannelName::new("/etc/passwd").is_file());
        assert!(!ChannelName::new("pipe.a").is_file());
    }
}
