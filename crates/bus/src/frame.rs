//! Frames: one bus transmission, several deliveries.
//!
//! §5.1: every message sent from one primary process to another is
//! actually sent to three destinations — the primary destination, the
//! backup of the destination, and the backup of the sender — yet §7.4.2
//! transmits it *once* over the intercluster bus; each target cluster
//! picks the transmission up and interprets its copy according to the
//! routing header. [`DeliveryTag`] is that header entry.

use crate::ids::ClusterId;
use crate::proto::{ChanEnd, Payload};
use crate::Pid;

/// Unique message identifier, for tracing only; never load-bearing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// How one target cluster must treat its copy of a frame (§7.4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryTag {
    /// Queue on the primary destination's routing entry and wake any
    /// process awaiting a message on the channel.
    Primary(ChanEnd),
    /// Queue on the destination's *backup* routing entry; wake nobody.
    /// Read only upon rollforward after a failure.
    DestBackup(ChanEnd),
    /// Increment the writes-since-sync count on the *sender's* backup
    /// routing entry and discard the message.
    SenderBackup(ChanEnd),
    /// Deliver to the target cluster's kernel (sync messages, birth
    /// notices, and other control traffic).
    Kernel,
}

/// A message as it travels: source process plus payload.
#[derive(Clone, Debug)]
pub struct Message {
    /// Trace identifier.
    pub id: MsgId,
    /// Sending process (a pseudo-pid for kernel-originated traffic).
    pub src: Pid,
    /// The protocol payload.
    pub payload: Payload,
    /// Piggybacked nondeterministic-event results (§10): the sender's
    /// backup logs these from its copy, so rollforward replays them.
    pub nondet: Vec<u64>,
}

impl Message {
    /// Approximate size on the wire, for bus cost accounting.
    pub fn wire_size(&self) -> usize {
        16 + self.nondet.len() * 8 + self.payload.wire_size()
    }
}

/// One bus transmission: a message plus its routing header.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The transmitting cluster.
    pub src_cluster: ClusterId,
    /// Target clusters with per-cluster treatment. At most one `Primary`
    /// target (there can be at most one local destination, §7.4.2).
    pub targets: Vec<(ClusterId, DeliveryTag)>,
    /// The message carried.
    pub msg: Message,
    /// Per-(sender, destination) link sequence numbers, parallel to
    /// `targets`; assigned by [`Frame::seal`] just before transmission.
    /// Empty until sealed.
    pub seqs: Vec<u64>,
    /// Header checksum set by [`Frame::seal`]; zero means unsealed.
    /// Covers identity, routing, and sequencing — the fields a mangled
    /// wire transfer would scramble.
    pub checksum: u64,
}

impl Frame {
    /// A fresh, unsealed frame.
    pub fn new(
        src_cluster: ClusterId,
        targets: Vec<(ClusterId, DeliveryTag)>,
        msg: Message,
    ) -> Frame {
        Frame { src_cluster, targets, msg, seqs: Vec::new(), checksum: 0 }
    }

    /// Approximate size on the wire.
    ///
    /// The checksum and sequence numbers model header bits the hardware
    /// already transfers; they do not change the cost model.
    pub fn wire_size(&self) -> usize {
        8 + self.targets.len() * 8 + self.msg.wire_size()
    }

    /// The clusters this frame is addressed to, in header order.
    pub fn target_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.targets.iter().map(|(c, _)| *c)
    }

    /// Asserts the structural invariant: at most one `Primary` tag.
    pub fn check_invariants(&self) -> Result<(), String> {
        let primaries =
            self.targets.iter().filter(|(_, t)| matches!(t, DeliveryTag::Primary(_))).count();
        if primaries > 1 {
            return Err(format!("frame has {primaries} primary destinations"));
        }
        if !self.seqs.is_empty() && self.seqs.len() != self.targets.len() {
            return Err(format!(
                "sealed frame has {} seqs for {} targets",
                self.seqs.len(),
                self.targets.len()
            ));
        }
        Ok(())
    }

    /// Stamps the frame with its link sequence numbers and computes the
    /// header checksum. Called once, at transmission time, after the
    /// final target set is known.
    pub fn seal(&mut self, seqs: Vec<u64>) {
        debug_assert_eq!(seqs.len(), self.targets.len());
        self.seqs = seqs;
        let sum = self.compute_checksum();
        // Zero is reserved for "unsealed"; remap so a sealed frame always
        // carries a nonzero checksum.
        self.checksum = if sum == 0 { 1 } else { sum };
    }

    /// Receiver-side integrity check. Unsealed frames (checksum zero, as
    /// built by unit tests that bypass the wire) are vacuously valid.
    pub fn verify(&self) -> bool {
        if self.checksum == 0 {
            return true;
        }
        let sum = self.compute_checksum();
        self.checksum == if sum == 0 { 1 } else { sum }
    }

    /// Marks the frame as damaged in transit (fault injection only):
    /// [`Frame::verify`] is guaranteed to fail afterwards.
    pub fn corrupt(&mut self) {
        self.checksum ^= 0x5A5A_5A5A_5A5A_5A5A;
        if self.checksum == 0 || self.verify() {
            self.checksum = self.checksum.wrapping_add(1).max(2);
        }
    }

    /// FNV-1a over the header fields, allocation-free (the payload body
    /// contributes only its length: the simulated wire mangles headers
    /// and the cost model charges for bytes, but payload storage is
    /// shared and must not be walked per transmission).
    fn compute_checksum(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for shift in [0u32, 16, 32, 48] {
                h ^= (v >> shift) & 0xffff;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.src_cluster.0 as u64);
        mix(self.msg.id.0);
        mix(self.msg.src.0);
        mix(self.msg.payload.wire_size() as u64);
        for &n in &self.msg.nondet {
            mix(n);
        }
        for (i, (cid, tag)) in self.targets.iter().enumerate() {
            let (code, end) = match tag {
                DeliveryTag::Primary(e) => (1u64, Some(e)),
                DeliveryTag::DestBackup(e) => (2, Some(e)),
                DeliveryTag::SenderBackup(e) => (3, Some(e)),
                DeliveryTag::Kernel => (4, None),
            };
            mix(cid.0 as u64);
            mix(code);
            if let Some(e) = end {
                mix(e.channel.0);
                mix(match e.side {
                    crate::proto::Side::A => 0,
                    crate::proto::Side::B => 1,
                });
            }
            mix(self.seqs.get(i).copied().unwrap_or(0));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::SharedBytes;
    use crate::proto::{ChannelId, Side};

    fn end() -> ChanEnd {
        ChanEnd { channel: ChannelId(1), side: Side::A }
    }

    #[test]
    fn at_most_one_primary_target() {
        let msg = Message {
            id: MsgId(1),
            src: Pid(1),
            payload: Payload::Data(SharedBytes::empty()),
            nondet: vec![],
        };
        let bad = Frame::new(
            ClusterId(0),
            vec![
                (ClusterId(1), DeliveryTag::Primary(end())),
                (ClusterId(2), DeliveryTag::Primary(end())),
            ],
            msg.clone(),
        );
        assert!(bad.check_invariants().is_err());
        let good = Frame::new(
            ClusterId(0),
            vec![
                (ClusterId(1), DeliveryTag::Primary(end())),
                (ClusterId(2), DeliveryTag::DestBackup(end())),
                (ClusterId(0), DeliveryTag::SenderBackup(end())),
            ],
            msg,
        );
        assert!(good.check_invariants().is_ok());
    }

    fn sealed() -> Frame {
        let msg = Message {
            id: MsgId(7),
            src: Pid(3),
            payload: Payload::Data(vec![1, 2, 3].into()),
            nondet: vec![42],
        };
        let mut f = Frame::new(
            ClusterId(0),
            vec![
                (ClusterId(1), DeliveryTag::Primary(end())),
                (ClusterId(2), DeliveryTag::DestBackup(end())),
            ],
            msg,
        );
        f.seal(vec![10, 11]);
        f
    }

    #[test]
    fn seal_then_verify_round_trips() {
        let f = sealed();
        assert_ne!(f.checksum, 0, "sealed frames carry a nonzero checksum");
        assert!(f.verify());
        assert!(f.check_invariants().is_ok());
    }

    #[test]
    fn corruption_is_always_caught() {
        let mut f = sealed();
        f.corrupt();
        assert!(!f.verify(), "a corrupted frame must fail verification");
    }

    #[test]
    fn checksum_covers_sequencing_and_routing() {
        let a = sealed();
        let mut b = sealed();
        b.seqs[0] += 1;
        assert_ne!(a.compute_checksum(), b.compute_checksum(), "seq change alters checksum");
        let mut c = sealed();
        c.targets[0].0 = ClusterId(3);
        assert_ne!(a.compute_checksum(), c.compute_checksum(), "target change alters checksum");
    }

    #[test]
    fn seal_does_not_change_wire_size() {
        let msg = Message {
            id: MsgId(7),
            src: Pid(3),
            payload: Payload::Data(vec![0; 64].into()),
            nondet: vec![],
        };
        let mut f =
            Frame::new(ClusterId(0), vec![(ClusterId(1), DeliveryTag::Primary(end()))], msg);
        let before = f.wire_size();
        f.seal(vec![0]);
        assert_eq!(f.wire_size(), before, "checksum/seqs are header bits, not billed bytes");
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = Message {
            id: MsgId(1),
            src: Pid(1),
            payload: Payload::Data(vec![0; 8].into()),
            nondet: vec![],
        };
        let large = Message {
            id: MsgId(2),
            src: Pid(1),
            payload: Payload::Data(vec![0; 800].into()),
            nondet: vec![],
        };
        assert!(large.wire_size() > small.wire_size());
    }
}
