//! Frames: one bus transmission, several deliveries.
//!
//! §5.1: every message sent from one primary process to another is
//! actually sent to three destinations — the primary destination, the
//! backup of the destination, and the backup of the sender — yet §7.4.2
//! transmits it *once* over the intercluster bus; each target cluster
//! picks the transmission up and interprets its copy according to the
//! routing header. [`DeliveryTag`] is that header entry.

use crate::ids::ClusterId;
use crate::proto::{ChanEnd, Payload};
use crate::Pid;

/// Unique message identifier, for tracing only; never load-bearing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// How one target cluster must treat its copy of a frame (§7.4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryTag {
    /// Queue on the primary destination's routing entry and wake any
    /// process awaiting a message on the channel.
    Primary(ChanEnd),
    /// Queue on the destination's *backup* routing entry; wake nobody.
    /// Read only upon rollforward after a failure.
    DestBackup(ChanEnd),
    /// Increment the writes-since-sync count on the *sender's* backup
    /// routing entry and discard the message.
    SenderBackup(ChanEnd),
    /// Deliver to the target cluster's kernel (sync messages, birth
    /// notices, and other control traffic).
    Kernel,
}

/// A message as it travels: source process plus payload.
#[derive(Clone, Debug)]
pub struct Message {
    /// Trace identifier.
    pub id: MsgId,
    /// Sending process (a pseudo-pid for kernel-originated traffic).
    pub src: Pid,
    /// The protocol payload.
    pub payload: Payload,
    /// Piggybacked nondeterministic-event results (§10): the sender's
    /// backup logs these from its copy, so rollforward replays them.
    pub nondet: Vec<u64>,
}

impl Message {
    /// Approximate size on the wire, for bus cost accounting.
    pub fn wire_size(&self) -> usize {
        16 + self.nondet.len() * 8 + self.payload.wire_size()
    }
}

/// One bus transmission: a message plus its routing header.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The transmitting cluster.
    pub src_cluster: ClusterId,
    /// Target clusters with per-cluster treatment. At most one `Primary`
    /// target (there can be at most one local destination, §7.4.2).
    pub targets: Vec<(ClusterId, DeliveryTag)>,
    /// The message carried.
    pub msg: Message,
}

impl Frame {
    /// Approximate size on the wire.
    pub fn wire_size(&self) -> usize {
        8 + self.targets.len() * 8 + self.msg.wire_size()
    }

    /// The clusters this frame is addressed to, in header order.
    pub fn target_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.targets.iter().map(|(c, _)| *c)
    }

    /// Asserts the structural invariant: at most one `Primary` tag.
    pub fn check_invariants(&self) -> Result<(), String> {
        let primaries =
            self.targets.iter().filter(|(_, t)| matches!(t, DeliveryTag::Primary(_))).count();
        if primaries > 1 {
            return Err(format!("frame has {primaries} primary destinations"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::SharedBytes;
    use crate::proto::{ChannelId, Side};

    fn end() -> ChanEnd {
        ChanEnd { channel: ChannelId(1), side: Side::A }
    }

    #[test]
    fn at_most_one_primary_target() {
        let msg = Message {
            id: MsgId(1),
            src: Pid(1),
            payload: Payload::Data(SharedBytes::empty()),
            nondet: vec![],
        };
        let bad = Frame {
            src_cluster: ClusterId(0),
            targets: vec![
                (ClusterId(1), DeliveryTag::Primary(end())),
                (ClusterId(2), DeliveryTag::Primary(end())),
            ],
            msg: msg.clone(),
        };
        assert!(bad.check_invariants().is_err());
        let good = Frame {
            src_cluster: ClusterId(0),
            targets: vec![
                (ClusterId(1), DeliveryTag::Primary(end())),
                (ClusterId(2), DeliveryTag::DestBackup(end())),
                (ClusterId(0), DeliveryTag::SenderBackup(end())),
            ],
            msg,
        };
        assert!(good.check_invariants().is_ok());
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = Message {
            id: MsgId(1),
            src: Pid(1),
            payload: Payload::Data(vec![0; 8].into()),
            nondet: vec![],
        };
        let large = Message {
            id: MsgId(2),
            src: Pid(1),
            payload: Payload::Data(vec![0; 800].into()),
            nondet: vec![],
        };
        assert!(large.wire_size() > small.wire_size());
    }
}
