//! The wire protocol: everything that travels in a frame's payload.
//!
//! One module holds every protocol message spoken in the system — user
//! data, the file/raw/tty server family, the page server, the process
//! server, and kernel-to-kernel control traffic (sync messages, birth
//! notices, backup-creation notices). Servers and kernels match on
//! [`Payload`] variants; there is no hidden side channel.

use std::collections::BTreeSet;
use std::sync::Arc;

use auros_vm::{PageNo, Program, Snapshot, PAGE_SIZE};

use crate::bytes::SharedBytes;
use crate::frame::Message;
use crate::ids::{ChannelName, ClusterId, Fd, Pid, Sig};

/// A globally unique channel identifier.
///
/// Identifiers are *derived*, never centrally allocated, so that a
/// promoted backup re-executing an allocation obtains the same value:
/// per-process bootstrap channels are derived from the (replay-stable)
/// pid, and file-server-paired channels from the file server's synced
/// counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub u64);

impl ChannelId {
    /// The n'th bootstrap channel of process `pid` (signal, file server,
    /// process server …).
    pub fn bootstrap(pid: Pid, n: u8) -> ChannelId {
        // Upper bit distinguishes derived bootstrap ids from allocated ids.
        ChannelId((1 << 63) | (pid.0 << 4) | n as u64)
    }

    /// An id allocated by `allocator` (a server) from its synced counter.
    pub fn allocated(allocator: Pid, counter: u32) -> ChannelId {
        ChannelId((allocator.0 << 32) ^ counter as u64)
    }
}

/// Which end of a channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Side {
    /// The first opener (or the client of a server port).
    A,
    /// The second opener (or the server).
    B,
}

impl Side {
    /// The opposite side.
    pub fn peer(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// One end of a channel: what a routing-table entry represents.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChanEnd {
    /// The channel.
    pub channel: ChannelId,
    /// Which side this end is.
    pub side: Side,
}

impl ChanEnd {
    /// The other end of the same channel.
    pub fn peer(self) -> ChanEnd {
        ChanEnd { channel: self.channel, side: self.side.peer() }
    }
}

impl From<ChanEnd> for auros_sim::TraceEnd {
    fn from(end: ChanEnd) -> auros_sim::TraceEnd {
        auros_sim::TraceEnd { channel: end.channel.0, side_b: end.side == Side::B }
    }
}

/// How a process is backed up (§7.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BackupMode {
    /// Backed up until a crash; no new backup afterwards. The default.
    #[default]
    Quarterback,
    /// New backup created only when the crashed cluster returns to
    /// service (peripheral servers).
    Halfback,
    /// New backup created before the new primary begins executing.
    Fullback,
}

/// A page's contents on the wire; `Arc` so that multi-cluster delivery
/// does not copy page data per target.
pub type PageBlob = Arc<[u8; PAGE_SIZE]>;

/// Which service sits behind a server port; determines syscall semantics
/// on the client side (§7.5.1: writes to a file "cannot return until that
/// answer arrives" while user-to-user writes return immediately).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceKind {
    /// File server: reads/writes are request/reply.
    File,
    /// Raw disk server: like a file but block-addressed.
    Raw,
    /// Terminal server: writes stream out, reads await queued input.
    Tty,
    /// Process server: time/alarm/kill/status.
    Proc,
}

/// Kinds of channel, recorded in routing entries and channel-init
/// descriptors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChanKind {
    /// Ordinary user-to-user channel.
    UserUser,
    /// A channel whose B side is a server process; client syscall
    /// behaviour is determined by the service kind (§7.5.1).
    ServerPort(ServiceKind),
    /// A process's signal channel (§7.5.2).
    Signal,
    /// A kernel's RPC port to a server (paging traffic, placement
    /// queries, §7.6); the A side owner is a kernel pseudo-pid.
    KernelPort,
}

/// Everything a cluster needs to materialize one routing-table entry.
#[derive(Clone, Debug)]
pub struct ChannelInit {
    /// The end the entry represents.
    pub end: ChanEnd,
    /// Owning process of this end.
    pub owner: Pid,
    /// The owner's fd bound to this end, if user-visible.
    pub fd: Option<Fd>,
    /// Peer process, if any.
    pub peer: Option<Pid>,
    /// Cluster currently hosting the peer's primary.
    pub peer_primary: Option<ClusterId>,
    /// Cluster hosting the peer's backup entry, if the peer is backed up.
    pub peer_backup: Option<ClusterId>,
    /// Cluster hosting the owner's backup entry, if the owner is backed up.
    pub owner_backup: Option<ClusterId>,
    /// The peer's backup mode; crash handling needs it to know whether a
    /// channel must be marked unusable until a new backup exists
    /// (fullbacks, §7.10.1 step 1).
    pub peer_mode: BackupMode,
    /// Channel kind.
    pub kind: ChanKind,
}

/// An opaque process image carried in sync records.
///
/// User processes snapshot their VM ([`auros_vm::Snapshot`]); server
/// processes snapshot their whole state object. The kernel downcasts on
/// restore.
pub trait ProcessImage: std::fmt::Debug + Send + Sync {
    /// Deep-copies the image.
    fn clone_box(&self) -> Box<dyn ProcessImage>;
    /// Downcast support.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Approximate serialized size, for bus cost accounting.
    fn wire_size(&self) -> usize;
}

impl Clone for Box<dyn ProcessImage> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A checkpoint image shared copy-on-write between the sync record in
/// flight, the backup record it updates, and any rebuild traffic.
/// Images are immutable once taken, so sharing is safe; the promote
/// path downcasts and clones the concrete image exactly once, when a
/// backup actually becomes a primary.
pub type SharedImage = Arc<dyn ProcessImage>;

impl ProcessImage for Snapshot {
    fn clone_box(&self) -> Box<dyn ProcessImage> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn wire_size(&self) -> usize {
        Snapshot::wire_size(self)
    }
}

/// A system call that had already produced its side effect (a request
/// message left the cluster) when the process was synchronized while
/// blocked awaiting the answer. The promoted backup must *not* re-issue
/// the request — the answer is in its saved queue — so the pending call
/// rides in the sync record and is completed from the queue on replay.
///
/// Calls with no pre-block side effect (`read`, `which`, `fork` waiting
/// on pages) need no record: the program counter is left *on* the trap
/// instruction, which simply re-executes after promotion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PendingCall {
    /// Blocked in `open` awaiting the file server's open reply; `fd` is
    /// the descriptor that will be bound (§7.4.1).
    Open {
        /// The descriptor to bind.
        fd: Fd,
    },
    /// Blocked in a write-like call awaiting a server reply on `end`;
    /// reply data (file reads) is copied to the guest buffer.
    WriteReply {
        /// The channel awaiting its reply.
        end: ChanEnd,
        /// Guest buffer for reply data.
        buf: u64,
        /// Capacity of that buffer.
        cap: u64,
    },
}

/// Cluster-independent kernel-kept process state, carried in sync
/// records so the backup cluster can rebind fds, trim queues, and replay
/// correctly (§7.8).
#[derive(Clone, Debug, Default)]
pub struct KernelState {
    /// Full fd table: fd → channel end.
    pub fds: Vec<(Fd, ChanEnd)>,
    /// Bunch groups: group id → member fds, in addition order (§7.5.1).
    pub bunches: Vec<(u64, Vec<Fd>)>,
    /// Installed signal handlers: signal → instruction index; absence
    /// means default (terminate), zero means ignore.
    pub handlers: Vec<(Sig, u32)>,
    /// Number of forks performed, for replay-stable child pids.
    pub fork_count: u64,
    /// Next fd number to hand out.
    pub next_fd: u32,
    /// In-progress blocking call whose request already left the cluster.
    pub pending: Option<PendingCall>,
}

impl KernelState {
    fn wire_size(&self) -> usize {
        self.fds.len() * 12
            + self.bunches.iter().map(|(_, v)| 8 + v.len() * 4).sum::<usize>()
            + self.handlers.len() * 5
            + 12
            + self.pending.as_ref().map_or(0, |_| 24)
    }
}

/// The synchronization record (§7.8's "sync message").
#[derive(Clone, Debug)]
pub struct SyncRecord {
    /// The syncing process.
    pub pid: Pid,
    /// Monotonic sync generation, starting at 1.
    pub sync_seq: u64,
    /// CPU/image state as of the sync point (shared, copy-on-write).
    pub image: SharedImage,
    /// Kernel-kept cluster-independent state (shared, copy-on-write).
    pub kstate: Arc<KernelState>,
    /// Reads done since the last sync, per channel end — the backup
    /// discards that many saved messages (§5.2, §7.8).
    pub reads_since_sync: Vec<(ChanEnd, u64)>,
    /// Suppression budget still unspent at sync time, per end. Normally
    /// empty, so the backup's writes-since-sync counts are zeroed (§5.2);
    /// a primary syncing *during rollforward* still owes skipped sends
    /// for messages its predecessor transmitted, and the new sync point
    /// must preserve that debt or a second replay would duplicate them.
    pub residual_suppress: Vec<(ChanEnd, u64)>,
    /// Channels closed since the last sync; their backup entries are
    /// removed.
    pub closed: Vec<ChanEnd>,
    /// Program text plus full channel table; present on the first sync to
    /// a cluster (backup creation) or when rebuilding a fullback's backup
    /// at a new cluster after a crash.
    pub rebuild: Option<RebuildInfo>,
}

/// One saved backup queue: a channel end with its `(write_seq, message)`
/// pairs, as captured at the last sync.
pub type SavedQueue = (ChanEnd, Vec<(u64, Message)>);

/// Text and channel table for (re)creating a backup from scratch.
#[derive(Clone, Debug)]
pub struct RebuildInfo {
    /// `true` when this rebuild re-protects a process after a crash: the
    /// receiving cluster must broadcast `BackupCreated` so correspondents
    /// unmark unusable channels (§7.10.1). A routine first sync (deferred
    /// backup creation, §7.7) carries `false` — peers were wired with the
    /// backup cluster from birth and nothing waits on an announcement.
    pub announce: bool,
    /// The program text (models fetching text pages from the file server
    /// rather than the page server, §7.6).
    pub program: Option<Program>,
    /// Backup mode of the process.
    pub mode: BackupMode,
    /// Every channel entry the backup cluster must hold.
    pub channels: Vec<ChannelInit>,
    /// Saved-queue transfer when a fullback's backup is recreated at a
    /// *new* cluster after a crash: the promoted primary copies its saved
    /// messages and residual write counts so the fresh backup offers the
    /// same protection the old one did. (The paper does not spell this
    /// step out; without it a second failure before the next sync would
    /// lose the saved messages.) Shared: the receiving cluster replays
    /// from the same buffers the sender captured.
    pub queues: Arc<Vec<SavedQueue>>,
    /// Residual suppression counts per end, transferred with the queues.
    pub write_counts: Vec<(ChanEnd, u64)>,
}

impl SyncRecord {
    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        8 + 8
            + self.image.wire_size()
            + self.kstate.wire_size()
            + self.reads_since_sync.len() * 16
            + self.closed.len() * 9
            + self.rebuild.as_ref().map_or(0, |r| {
                64 + r.channels.len() * 32
                    + r.queues
                        .iter()
                        .map(|(_, q)| q.iter().map(|(_, m)| 8 + m.wire_size()).sum::<usize>())
                        .sum::<usize>()
                    + r.write_counts.len() * 16
            })
    }
}

/// Birth notice (§7.7): sent to the cluster of the forking process's
/// backup when a fork occurs.
#[derive(Clone, Debug)]
pub struct BirthNotice {
    /// The forking process.
    pub parent: Pid,
    /// Which fork of the parent this is (0-based).
    pub fork_index: u64,
    /// The child's globally unique pid.
    pub child: Pid,
    /// The child's program (same text as the parent).
    pub program: Program,
    /// The child's backup mode.
    pub mode: BackupMode,
    /// Backup routing entries for the channels created on fork (the
    /// child's bootstrap channels) — "they must be there to receive backup
    /// copies of messages sent to the primary" (§7.7).
    pub bootstrap: Vec<ChannelInit>,
}

/// Kernel-to-kernel control traffic.
#[derive(Clone, Debug)]
pub enum Control {
    /// A process synchronization (§7.8). Also read by the page server,
    /// which makes the backup page account identical to the primary's.
    /// `Arc`: the record (image, kernel state, rebuild queues) is built
    /// once and shared by every cluster the frame reaches.
    Sync(Arc<SyncRecord>),
    /// A fork occurred (§7.7). `Arc` for the same reason — the program
    /// text inside must not be re-cloned per delivery target.
    Birth(Arc<BirthNotice>),
    /// A new backup exists for `pid` at `cluster`; correspondents repair
    /// routing and unblock fullback channels (§7.10.1 step 1).
    BackupCreated {
        /// The re-protected process.
        pid: Pid,
        /// Where its new backup lives.
        cluster: ClusterId,
    },
    /// Create routing-table entries for a channel end at the receiving
    /// cluster (server-side ports of a forked child's bootstrap
    /// channels). The receiver compares its own id against the two
    /// placement fields to pick the entry role.
    CreatePort {
        /// Cluster that must hold the primary entry.
        primary_at: ClusterId,
        /// Cluster that must hold the backup entry, if any.
        backup_at: Option<ClusterId>,
        /// The entry descriptor.
        init: ChannelInit,
    },
    /// The named end was closed by its owner; the peer's entries mark
    /// the peer gone (writes fail; reads drain the queue then fail).
    ChannelClosed {
        /// The closed end.
        end: ChanEnd,
    },
    /// The process exited or was killed; its backup record, backup
    /// entries, and page accounts are released.
    Exited {
        /// The finished process.
        pid: Pid,
    },
    /// Backpressure (§5.2's message-count trigger, driven from the
    /// backup side): the cluster holding `pid`'s backup message queue
    /// reports the queue near its configured bound. The primary's
    /// kernel must synchronize `pid` now, trimming the queue, instead
    /// of letting sustained wire faults grow it without limit.
    SyncDemand {
        /// The process whose backup queue is near its bound.
        pid: Pid,
    },
    /// §10 extension: a hardware failure killed this process *without*
    /// bringing its cluster down. Receivers repair their routing entries
    /// toward the backup, and the backup's cluster promotes it.
    ProcessFailed {
        /// The failed process.
        pid: Pid,
        /// The cluster whose hardware failed (excluded from fullback
        /// re-placement).
        at: ClusterId,
    },
}

/// Requests understood by the file server (§7.6, §7.4.1).
#[derive(Clone, Debug)]
pub enum FsRequest {
    /// Open a name: a file path or a rendezvous channel name.
    Open {
        /// The name being opened.
        name: ChannelName,
        /// The opening process.
        opener: Pid,
        /// Cluster hosting the opener's primary.
        opener_cluster: ClusterId,
        /// Cluster hosting the opener's backup entries, if backed up.
        opener_backup: Option<ClusterId>,
        /// The fd the opener's kernel will bind on success.
        opener_fd: Fd,
        /// The opener's backup mode (recorded in the peer's entry for
        /// crash handling, §7.10.1).
        opener_mode: BackupMode,
    },
    /// Read up to `len` bytes at the channel's cursor.
    FileRead {
        /// Maximum bytes to return.
        len: u32,
    },
    /// Write bytes at the channel's cursor.
    FileWrite {
        /// Data to write; shared so fan-out does not copy it.
        data: SharedBytes,
    },
    /// Reposition the channel's cursor.
    FileSeek {
        /// Absolute byte position.
        pos: u64,
    },
    /// Close the channel's file.
    CloseFile,
    /// Remove a file by name (sent on the opener's file-server port).
    Unlink {
        /// The path to remove.
        name: ChannelName,
    },
}

/// File server errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsError {
    /// Open of a rendezvous name timed out or the peer vanished.
    NoPeer,
    /// File does not exist and creation was not possible.
    NotFound,
    /// Device-level failure reported by the disk pair.
    Io,
}

/// Replies from the file server.
#[derive(Clone, Debug)]
pub enum FsReply {
    /// Successful open. The kernel (not the user program) consumes this:
    /// it creates the routing-table entry and binds the fd; the arrival of
    /// the backup copy at the backup cluster creates the backup entry
    /// (§7.4.1).
    OpenReply {
        /// The fd requested at open time.
        fd: Fd,
        /// Entry descriptor for the opener's end.
        init: ChannelInit,
    },
    /// Open failure.
    OpenFailed {
        /// The fd requested at open time.
        fd: Fd,
        /// Why.
        err: FsError,
    },
    /// Data returned by `FileRead` (empty at end of file).
    Data(SharedBytes),
    /// Byte count acknowledged for `FileWrite`.
    Ack(u64),
    /// Request-level error.
    Err(FsError),
}

/// Requests understood by the page server (§7.6).
#[derive(Clone, Debug)]
pub enum PagerRequest {
    /// A modified page flushed at sync (or eviction) time.
    PageOut {
        /// Owning process.
        pid: Pid,
        /// Which page.
        page: PageNo,
        /// Page contents.
        data: PageBlob,
    },
    /// Demand-page request from a kernel.
    PageIn {
        /// Owning process.
        pid: Pid,
        /// Which page.
        page: PageNo,
    },
    /// The process's primary crashed: its backup account becomes the
    /// primary account (recovery, §7.10.2).
    Promote {
        /// The promoted process.
        pid: Pid,
    },
    /// Duplicate the primary account into a fresh backup account (fullback
    /// re-creation at a new cluster).
    DuplicateAccount {
        /// The re-protected process.
        pid: Pid,
    },
    /// The process exited; drop both accounts.
    DropAccount {
        /// The exited process.
        pid: Pid,
    },
}

/// Replies from the page server.
#[derive(Clone, Debug)]
pub enum PagerReply {
    /// The requested page.
    Page {
        /// Owning process.
        pid: Pid,
        /// Which page.
        page: PageNo,
        /// Contents, or `None` if the account has no such page (the
        /// kernel then installs a zero page).
        data: Option<PageBlob>,
    },
    /// Generic acknowledgement.
    Ack,
}

/// Requests understood by the process server (§7.5.1, §7.6).
#[derive(Clone, Debug)]
pub enum ProcRequest {
    /// What time is it? Never answered by the local kernel (§7.5.1).
    Time,
    /// Deliver `SIGALRM` to the requester after `after` ticks (§7.5.2).
    /// Zero cancels a pending alarm.
    Alarm {
        /// Delay in ticks.
        after: u64,
    },
    /// Deliver a signal to another process's signal channel.
    Kill {
        /// Target process.
        target: Pid,
        /// Signal to deliver.
        sig: Sig,
    },
    /// Periodic report from a kernel: which pids it hosts (§7.6).
    Report {
        /// Reporting cluster.
        cluster: ClusterId,
        /// Primary processes resident there.
        pids: Vec<Pid>,
    },
    /// Where does `pid` run? (System status service.)
    WhereIs {
        /// The process asked about.
        pid: Pid,
    },
    /// Choose a cluster for a new fullback backup, avoiding `exclude`
    /// (§7.10.2: "the process server must be available to determine where
    /// new backups for fullbacks are to be located").
    PlaceBackup {
        /// The process needing a new backup.
        pid: Pid,
        /// Clusters that must not be chosen (the primary's, the dead one).
        exclude: Vec<ClusterId>,
    },
}

/// Replies from the process server.
#[derive(Clone, Debug)]
pub enum ProcReply {
    /// Current time in ticks.
    Time {
        /// The server's clock reading.
        now: u64,
    },
    /// Alarm accepted.
    AlarmSet,
    /// Kill outcome.
    Killed {
        /// Whether the target was known.
        ok: bool,
    },
    /// Location answer for `WhereIs`.
    Location {
        /// The process asked about.
        pid: Pid,
        /// Hosting cluster, if known.
        cluster: Option<ClusterId>,
    },
    /// Placement answer for `PlaceBackup`.
    Place {
        /// The process the placement is for (requests on a kernel port
        /// may be outstanding for several processes at once).
        pid: Pid,
        /// Chosen cluster, if any qualifies.
        cluster: Option<ClusterId>,
    },
}

/// Terminal-server control traffic (file server → tty server).
#[derive(Clone, Debug)]
pub enum TtyMsg {
    /// A user opened a terminal: bind the new channel end to the
    /// terminal line so input flows to the reader.
    Bind {
        /// The tty server's end of the new channel.
        end: ChanEnd,
        /// Terminal line number (from the `tty:N` name).
        term: u32,
        /// The opening process (control-C targets it, §7.5.2).
        reader: Pid,
    },
}

/// Everything that can ride in a frame.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Ordinary user data on a channel.
    Data(SharedBytes),
    /// An asynchronous signal on a signal channel (§7.5.2).
    Signal(Sig),
    /// File server request.
    Fs(FsRequest),
    /// File server reply.
    FsReply(FsReply),
    /// Page server request.
    Pager(PagerRequest),
    /// Page server reply.
    PagerReply(PagerReply),
    /// Process server request.
    Proc(ProcRequest),
    /// Process server reply.
    ProcReply(ProcReply),
    /// Terminal-server control.
    Tty(TtyMsg),
    /// Kernel-to-kernel control.
    Control(Control),
}

impl Payload {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Data(d) => 4 + d.len(),
            Payload::Signal(_) => 2,
            Payload::Fs(FsRequest::Open { name, .. }) => 32 + name.as_str().len(),
            Payload::Fs(FsRequest::FileWrite { data }) => 8 + data.len(),
            Payload::Fs(FsRequest::Unlink { name }) => 12 + name.as_str().len(),
            Payload::Fs(_) => 16,
            Payload::FsReply(FsReply::Data(d)) => 4 + d.len(),
            Payload::FsReply(FsReply::OpenReply { .. }) => 64,
            Payload::FsReply(_) => 12,
            Payload::Pager(PagerRequest::PageOut { .. }) => 24 + PAGE_SIZE,
            Payload::Pager(_) => 20,
            Payload::PagerReply(PagerReply::Page { data, .. }) => {
                20 + data.as_ref().map_or(0, |_| PAGE_SIZE)
            }
            Payload::PagerReply(PagerReply::Ack) => 4,
            Payload::Proc(ProcRequest::Report { pids, .. }) => 12 + pids.len() * 8,
            Payload::Proc(_) => 16,
            Payload::ProcReply(_) => 12,
            Payload::Tty(TtyMsg::Bind { .. }) => 24,
            Payload::Control(Control::Sync(s)) => s.wire_size(),
            Payload::Control(Control::Birth(b)) => 48 + b.bootstrap.len() * 32,
            Payload::Control(Control::BackupCreated { .. }) => 12,
            Payload::Control(Control::CreatePort { .. }) => 40,
            Payload::Control(Control::ChannelClosed { .. }) => 12,
            Payload::Control(Control::Exited { .. }) => 10,
            Payload::Control(Control::SyncDemand { .. }) => 10,
            Payload::Control(Control::ProcessFailed { .. }) => 12,
        }
    }
}

/// Pseudo-pid namespace for kernels (they send paging RPCs but are not
/// processes).
pub fn kernel_pid(cluster: ClusterId) -> Pid {
    Pid((1 << 62) | cluster.0 as u64)
}

/// Returns `true` if `pid` is a kernel pseudo-pid.
pub fn is_kernel_pid(pid: Pid) -> bool {
    pid.0 & (1 << 62) != 0 && pid.0 & (1 << 63) == 0
}

/// Derives a replay-stable child pid from the parent and its fork count.
///
/// Uses a 64-bit mix; collisions are vanishingly unlikely at simulation
/// scale and are checked for at process creation.
pub fn derive_child_pid(parent: Pid, fork_index: u64) -> Pid {
    let mut z = parent.0 ^ fork_index.rotate_left(32) ^ 0x517c_c1b7_2722_0a95;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Clear the reserved namespaces (bootstrap-channel and kernel bits).
    Pid(z & !(0b11 << 62))
}

/// The set of pages a snapshot considers valid — helper for pager logic.
pub fn snapshot_valid_pages(image: &dyn ProcessImage) -> Option<&BTreeSet<PageNo>> {
    image.as_any().downcast_ref::<Snapshot>().map(|s| &s.valid_pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_channel_ids_differ_per_process_and_slot() {
        let a0 = ChannelId::bootstrap(Pid(1), 0);
        let a1 = ChannelId::bootstrap(Pid(1), 1);
        let b0 = ChannelId::bootstrap(Pid(2), 0);
        assert_ne!(a0, a1);
        assert_ne!(a0, b0);
    }

    #[test]
    fn chan_end_peer_flips_side() {
        let e = ChanEnd { channel: ChannelId(5), side: Side::A };
        assert_eq!(e.peer().side, Side::B);
        assert_eq!(e.peer().peer(), e);
    }

    #[test]
    fn derived_pids_are_stable_and_distinct() {
        let p = Pid(77);
        let c1 = derive_child_pid(p, 0);
        let c2 = derive_child_pid(p, 1);
        assert_eq!(c1, derive_child_pid(p, 0), "replay must derive the same pid");
        assert_ne!(c1, c2);
        assert!(!is_kernel_pid(c1));
    }

    #[test]
    fn kernel_pids_are_recognizable() {
        let k = kernel_pid(ClusterId(3));
        assert!(is_kernel_pid(k));
        assert!(!is_kernel_pid(Pid(3)));
    }

    #[test]
    fn payload_sizes_reflect_content() {
        let small = Payload::Data(vec![0; 10].into());
        let page = Payload::Pager(PagerRequest::PageOut {
            pid: Pid(1),
            page: PageNo(0),
            data: Arc::new([0u8; PAGE_SIZE]),
        });
        assert!(page.wire_size() > small.wire_size());
        assert!(page.wire_size() >= PAGE_SIZE);
    }

    #[test]
    fn snapshot_image_roundtrip() {
        let snap = Snapshot {
            regs: [0; 16],
            pc: 3,
            sig_stack: vec![],
            valid_pages: [PageNo(1)].into_iter().collect(),
            fuel_used: 10,
        };
        let image: Box<dyn ProcessImage> = Box::new(snap.clone());
        let copy = image.clone();
        let back = copy.as_any().downcast_ref::<Snapshot>().unwrap();
        assert_eq!(back, &snap);
        assert_eq!(snapshot_valid_pages(&*image).unwrap().len(), 1);
    }
}
