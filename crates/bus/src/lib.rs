#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The intercluster bus and the system's wire protocol.
//!
//! The Auragen 4000 connects clusters with a dual high-speed bus whose
//! hardware guarantees two properties the whole fault-tolerance scheme
//! rests on (§5.1):
//!
//! 1. **All-or-none**: a message addressed to several clusters reaches all
//!    of them or none of them.
//! 2. **Non-interleaving**: if two messages are sent, one reaches all of
//!    its destinations before the other arrives at any of its
//!    destinations — so a primary and its backup always observe the same
//!    message order.
//!
//! This crate models that hardware: [`Frame`]s carry a [`Message`] plus a
//! routing header naming up to a handful of `(cluster, delivery-tag)`
//! targets, and [`BusSchedule`] serializes transmissions so the two
//! properties hold structurally. It also defines the complete wire
//! protocol ([`proto`]) spoken by kernels, the page server, the file
//! server family, and the process server.

pub mod bytes;
pub mod fabric;
pub mod frame;
pub mod ids;
pub mod link;
pub mod proto;
pub mod schedule;

pub use bytes::{payload_allocs, SharedBytes};
pub use fabric::{grant_horizon, partition_of, BusFabric};
pub use frame::{DeliveryTag, Frame, Message, MsgId};
pub use ids::{ChannelName, ClusterId, EntryId, Fd, Pid, Sig};
pub use link::{FrameClass, LinkLedger};
pub use proto::Payload;
pub use schedule::{BusKind, BusSchedule, Reservation, WireFault};
