//! The bus fabric: one broadcast domain, or a partitioned fleet of them.
//!
//! The paper's machine has a single dual intercluster bus — every
//! transmission serializes against every other (§7.4.2), which caps the
//! fleet at 32 clusters. [`BusFabric`] keeps that model as its identity
//! case (one segment, byte-for-byte the old [`BusSchedule`] behavior) and
//! adds the fleet-scale generalization: the clusters are partitioned into
//! fixed-size *segments*, each a full dual-bus broadcast domain with its
//! own transmission schedule, joined by deterministic store-and-forward
//! gateways.
//!
//! A frame is granted a window on its **sender's home segment** only.
//! Delivery to targets inside the segment happens at the window's end,
//! exactly as before. If any target lives in another segment, the whole
//! frame is delivered at window end **plus one fixed gateway latency**,
//! and the gateway's forwarded copy occupies each remote segment's bus
//! for the frame's transmission time. Keeping a single delivery instant
//! for all targets preserves §5.1's all-or-none and non-interleaving
//! properties per frame; determinism is untouched because routing is a
//! pure function of cluster ids and the latency is a constant.

use auros_sim::{Dur, VTime};

use crate::schedule::{BusCounters, BusKind, BusSchedule, Reservation, WireFault};

/// A partitioned intercluster bus: `ceil(clusters / segment_size)`
/// independent dual-bus broadcast domains joined by gateways.
///
/// With one segment the fabric is a transparent wrapper around a single
/// [`BusSchedule`] — the identity the determinism suite pins.
#[derive(Debug)]
pub struct BusFabric {
    segments: Vec<BusSchedule>,
    /// Clusters per segment; 0 means "unsegmented" (everything in
    /// segment 0), the paper's configuration.
    segment_size: u16,
    /// Fixed store-and-forward latency added when a frame leaves its
    /// home segment.
    gateway_latency: Dur,
    /// One-shot faults armed fabric-wide (multi-segment only): the first
    /// window granted anywhere at or after the arm time absorbs the
    /// fault. Sorted by arm time; single-segment fabrics delegate to the
    /// segment's own armed list instead.
    armed: Vec<(VTime, WireFault)>,
    /// Frames that crossed a gateway.
    gateway_frames: u64,
    /// Ticks of remote-segment bus time consumed by forwarded copies.
    gateway_forward_ticks: u64,
}

impl BusFabric {
    /// A single-segment fabric: the paper's one broadcast domain.
    pub fn single() -> BusFabric {
        BusFabric {
            segments: vec![BusSchedule::new()],
            segment_size: 0,
            gateway_latency: Dur::ZERO,
            armed: Vec::new(),
            gateway_frames: 0,
            gateway_forward_ticks: 0,
        }
    }

    /// A fabric for `clusters` clusters in segments of `segment_size`
    /// (0 = unsegmented). `gateway_latency` is charged to every frame
    /// that leaves its home segment.
    pub fn new(clusters: u16, segment_size: u16, gateway_latency: Dur) -> BusFabric {
        if segment_size == 0 {
            return BusFabric::single();
        }
        let n = (clusters as usize).div_ceil(segment_size as usize).max(1);
        BusFabric {
            segments: (0..n).map(|_| BusSchedule::new()).collect(),
            segment_size,
            gateway_latency,
            armed: Vec::new(),
            gateway_frames: 0,
            gateway_forward_ticks: 0,
        }
    }

    /// How many segments the fabric has.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segment a cluster's bus interface is attached to.
    pub fn segment_of(&self, cluster: u16) -> usize {
        cluster.checked_div(self.segment_size).unwrap_or(0) as usize
    }

    /// Frames that crossed a gateway so far.
    pub fn gateway_frames(&self) -> u64 {
        self.gateway_frames
    }

    fn is_single(&self) -> bool {
        self.segments.len() == 1
    }

    /// Applies a fabric-level armed one-shot to a fresh grant
    /// (multi-segment only; single-segment fabrics arm the segment).
    fn apply_fabric_fault(&mut self, res: &mut Reservation) {
        if res.fault.is_none() && self.armed.first().is_some_and(|(t, _)| *t <= res.start) {
            res.fault = Some(self.armed.remove(0).1);
        }
    }

    /// Books the forwarded copy's occupancy of every remote segment a
    /// cross-segment frame reaches, and stretches delivery by the fixed
    /// gateway latency. The forwarded copy starts no earlier than the
    /// home window's end (store-and-forward).
    fn forward_cross_segment<I>(&mut self, res: &mut Reservation, xmit: Dur, remotes: I)
    where
        I: Iterator<Item = usize>,
    {
        let home_end = res.deliver_at;
        let mut forwarded = false;
        for seg in remotes {
            if let Some(s) = self.segments.get_mut(seg) {
                s.account_forward(home_end, xmit);
                self.gateway_forward_ticks += xmit.as_ticks();
                forwarded = true;
            }
        }
        if forwarded {
            self.gateway_frames += 1;
            res.deliver_at += self.gateway_latency;
        }
    }

    /// Reserves a first-attempt window for a frame from cluster `src` to
    /// `targets`. The window is granted on the home segment; delivery is
    /// stretched by the gateway latency iff any target is remote.
    pub fn reserve_routed<I>(
        &mut self,
        src: u16,
        targets: I,
        earliest: VTime,
        xmit: Dur,
        bytes: usize,
    ) -> Option<Reservation>
    where
        I: Iterator<Item = u16>,
    {
        self.grant_routed(src, targets, earliest, xmit, bytes, false)
    }

    /// [`Self::reserve_routed`] for a retransmission (accounted under
    /// retries on the home segment, like [`BusSchedule::reserve_retry`]).
    pub fn reserve_retry_routed<I>(
        &mut self,
        src: u16,
        targets: I,
        earliest: VTime,
        xmit: Dur,
        bytes: usize,
    ) -> Option<Reservation>
    where
        I: Iterator<Item = u16>,
    {
        self.grant_routed(src, targets, earliest, xmit, bytes, true)
    }

    fn grant_routed<I>(
        &mut self,
        src: u16,
        targets: I,
        earliest: VTime,
        xmit: Dur,
        bytes: usize,
        retry: bool,
    ) -> Option<Reservation>
    where
        I: Iterator<Item = u16>,
    {
        let home = self.segment_of(src);
        let seg = &mut self.segments[home];
        let mut res = if retry {
            seg.reserve_retry(earliest, xmit, bytes)
        } else {
            seg.reserve(earliest, xmit, bytes)
        }?;
        if self.is_single() {
            return Some(res); // Identity: nothing crosses, nothing armed here.
        }
        self.apply_fabric_fault(&mut res);
        // Collect the distinct remote segments (tiny, ordered: targets
        // come from a frame's target list).
        let mut remotes: Vec<usize> =
            targets.map(|t| self.segment_of(t)).filter(|&s| s != home).collect();
        remotes.sort_unstable();
        remotes.dedup();
        self.forward_cross_segment(&mut res, xmit, remotes.into_iter());
        Some(res)
    }

    /// Arms a one-shot transient fault. Single segment: on the segment
    /// (identical to the historical behavior). Multi-segment: fabric-wide
    /// — the first window granted anywhere at or after `at` absorbs it.
    pub fn arm_fault(&mut self, at: VTime, fault: WireFault) {
        if self.is_single() {
            self.segments[0].arm_fault(at, fault);
        } else {
            self.armed.push((at, fault));
            self.armed.sort_by_key(|(t, _)| *t);
        }
    }

    /// Declares a flaky window on `bus` — on every segment's `bus` (a
    /// fleet-wide storm on that wire of each dual pair).
    pub fn add_flaky_window(&mut self, from: VTime, until: VTime, bus: BusKind) {
        for seg in &mut self.segments {
            seg.add_flaky_window(from, until, bus);
        }
    }

    /// Publishes bus metrics. Single segment: the historical names
    /// (`bus.a.frames`, …), byte-identical. Multi-segment: per-segment
    /// names plus fabric gateway counters.
    pub fn publish_metrics(&self, reg: &mut auros_sim::MetricsRegistry) {
        if self.is_single() {
            self.segments[0].publish_metrics(reg);
            return;
        }
        for (i, seg) in self.segments.iter().enumerate() {
            seg.publish_metrics_prefixed(&format!("segment.{i}."), reg);
        }
        reg.set("fabric.segments", self.segments.len() as u64);
        reg.set("fabric.gateway_frames", self.gateway_frames);
        reg.set("fabric.gateway_forward_ticks", self.gateway_forward_ticks);
    }

    // ------------------------------------------------------------------
    // Whole-fabric bus management. The kernel's failover, quarantine and
    // probe logic speaks in terms of "the" dual pair; on a multi-segment
    // fabric these act on every segment (bus A dying means the A wire of
    // every domain — the correlated-fault reading of §7.4).
    // ------------------------------------------------------------------

    /// Fails one wire of the dual pair, fleet-wide. Returns `true` if a
    /// healthy bus remains (on the first segment — segments are
    /// symmetric under fleet-wide failure).
    pub fn fail(&mut self, bus: BusKind) -> bool {
        let mut ok = true;
        for seg in &mut self.segments {
            ok = seg.fail(bus);
        }
        ok
    }

    /// Fails the active bus of every segment at `now`. Returns the
    /// surviving bus kind, or `None` if the pair is exhausted.
    pub fn fail_active(&mut self, now: VTime) -> Option<BusKind> {
        let mut survivor = None;
        for seg in &mut self.segments {
            survivor = seg.fail_active(now);
        }
        survivor
    }

    /// The active bus (of segment 0; fleet-wide management keeps the
    /// segments in lockstep).
    pub fn active(&self) -> Option<BusKind> {
        self.segments[0].active()
    }

    /// Peak consecutive faulted windows on `bus` across segments.
    pub fn consecutive_faults(&self, bus: BusKind) -> u32 {
        self.segments.iter().map(|s| s.consecutive_faults(bus)).max().unwrap_or(0)
    }

    /// Benches `bus` on every segment (where a standby exists). Returns
    /// the standby that took over, if any segment switched.
    pub fn quarantine(&mut self, bus: BusKind, now: VTime) -> Option<BusKind> {
        let mut switched = None;
        for seg in &mut self.segments {
            if let Some(s) = seg.quarantine(bus, now) {
                switched = Some(s);
            }
        }
        switched
    }

    /// Whether `bus` is quarantined on any segment.
    pub fn is_quarantined(&self, bus: BusKind) -> bool {
        self.segments.iter().any(|s| s.is_quarantined(bus))
    }

    /// Heals `bus` on every segment.
    pub fn heal(&mut self, bus: BusKind) {
        for seg in &mut self.segments {
            seg.heal(bus);
        }
    }

    /// Whether a probe on `bus` at `now` survives on every segment that
    /// has it quarantined (a fleet probe heals all or nothing).
    pub fn probe_ok(&self, bus: BusKind, now: VTime) -> bool {
        self.segments.iter().all(|s| s.probe_ok(bus, now))
    }

    /// Traffic counters for one bus, summed across segments.
    pub fn counters(&self, bus: BusKind) -> BusCounters {
        let mut total = BusCounters::default();
        for seg in &self.segments {
            let c = seg.counters(bus);
            total.frames += c.frames;
            total.bytes += c.bytes;
            total.busy += c.busy;
            total.retries += c.retries;
        }
        total
    }

    /// When segment 0's bus next becomes free (single-segment: the bus).
    pub fn free_at(&self) -> VTime {
        self.segments[0].free_at()
    }

    /// Grants that probed fault structures, summed across segments
    /// (zero in fault-free runs).
    pub fn fault_probes(&self) -> u64 {
        self.segments.iter().map(|s| s.fault_probes()).sum()
    }
}

// ----------------------------------------------------------------------
// Partition mapping and the conservative lookahead window. Free functions
// (no fabric instance needed): the parallel executor asks these questions
// before the world is even built, and the DESIGN.md soundness argument is
// stated in terms of them.
// ----------------------------------------------------------------------

/// The segment a cluster belongs to, as a pure function of the fabric
/// shape (`segment_size == 0` means unsegmented: everything in segment 0).
/// Matches [`BusFabric::segment_of`] by construction.
pub fn segment_of(cluster: u16, segment_size: u16) -> usize {
    cluster.checked_div(segment_size).unwrap_or(0) as usize
}

/// The executor partition a cluster's slices prefer, derived from bus
/// topology: whole segments map to partitions round-robin, so clusters
/// sharing a broadcast domain share a partition's locality while the
/// segments spread evenly over `partitions` workers.
///
/// Purely advisory — *placement* affects wall-clock only; the merge order
/// is fixed by reservation seq, so any `partitions` value yields
/// byte-identical results.
pub fn partition_of(cluster: u16, segment_size: u16, partitions: u32) -> u32 {
    let p = partitions.max(1);
    (segment_of(cluster, segment_size) as u32) % p
}

/// The conservative lookahead window: the minimum virtual-time distance
/// between a cluster initiating a cross-cluster effect and that effect
/// becoming visible anywhere else. A send costs `exec_send` on the CPU
/// before it can even request a bus window, the window itself lasts at
/// least `bus_latency`, and a multi-segment fabric adds `gateway_latency`
/// store-and-forward for frames that leave their home domain.
///
/// Any computation whose commit-time lower bound exceeds the current
/// event's time by less than this window can still only affect its *own*
/// cluster — which is why a VM slice (whose only externally visible
/// output is an event on its own cluster, lower-bounded by the dispatch
/// cost) can run concurrently with the coordinator without tightening
/// this bound.
pub fn grant_horizon(
    exec_send: Dur,
    bus_latency: Dur,
    gateway_latency: Dur,
    multi_segment: bool,
) -> Dur {
    let base = Dur(exec_send.as_ticks() + bus_latency.as_ticks());
    if multi_segment {
        Dur(base.as_ticks() + gateway_latency.as_ticks())
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(list: &[u16]) -> impl Iterator<Item = u16> + '_ {
        list.iter().copied()
    }

    #[test]
    fn free_segment_of_matches_fabric() {
        let fabric = BusFabric::new(64, 16, Dur(30));
        for c in 0..64u16 {
            assert_eq!(segment_of(c, 16), fabric.segment_of(c));
        }
        assert_eq!(segment_of(7, 0), 0, "unsegmented collapses to one domain");
    }

    #[test]
    fn partition_of_spreads_segments_and_tolerates_zero() {
        // 4 segments over 2 partitions: alternating.
        assert_eq!(partition_of(0, 16, 2), 0);
        assert_eq!(partition_of(16, 16, 2), 1);
        assert_eq!(partition_of(32, 16, 2), 0);
        assert_eq!(partition_of(63, 16, 2), 1);
        // partitions = 0 is treated as 1 (everything on one worker).
        assert_eq!(partition_of(63, 16, 0), 0);
    }

    #[test]
    fn grant_horizon_is_send_plus_bus_plus_optional_gateway() {
        assert_eq!(grant_horizon(Dur(5), Dur(20), Dur(30), false), Dur(25));
        assert_eq!(grant_horizon(Dur(5), Dur(20), Dur(30), true), Dur(55));
    }

    #[test]
    fn single_segment_is_the_identity() {
        let mut plain = BusSchedule::new();
        let mut fabric = BusFabric::single();
        for i in 0..50u64 {
            let a = plain.reserve(VTime(i * 3), Dur(10 + i % 4), 64).unwrap();
            let b = fabric
                .reserve_routed(0, targets(&[1, 2]), VTime(i * 3), Dur(10 + i % 4), 64)
                .unwrap();
            assert_eq!((a.start, a.deliver_at, a.bus), (b.start, b.deliver_at, b.bus));
            assert!(b.fault.is_none());
        }
        assert_eq!(fabric.gateway_frames(), 0);
        assert_eq!(fabric.counters(BusKind::A).frames, plain.counters(BusKind::A).frames);
    }

    #[test]
    fn segment_of_partitions_by_fixed_size() {
        let fabric = BusFabric::new(64, 16, Dur(30));
        assert_eq!(fabric.segment_count(), 4);
        assert_eq!(fabric.segment_of(0), 0);
        assert_eq!(fabric.segment_of(15), 0);
        assert_eq!(fabric.segment_of(16), 1);
        assert_eq!(fabric.segment_of(63), 3);
    }

    #[test]
    fn cross_segment_delivery_pays_gateway_latency_once() {
        let mut fabric = BusFabric::new(32, 8, Dur(30));
        // Intra-segment: no gateway charge.
        let r = fabric.reserve_routed(0, targets(&[1, 7]), VTime(0), Dur(10), 64).unwrap();
        assert_eq!(r.deliver_at, VTime(10));
        assert_eq!(fabric.gateway_frames(), 0);
        // Cross-segment (two remote segments): one fixed charge.
        let r = fabric.reserve_routed(0, targets(&[9, 17]), VTime(0), Dur(10), 64).unwrap();
        assert_eq!(r.start, VTime(10), "home segment serializes its own windows");
        assert_eq!(r.deliver_at, VTime(10 + 10 + 30));
        assert_eq!(fabric.gateway_frames(), 1);
    }

    #[test]
    fn segments_schedule_independently() {
        let mut fabric = BusFabric::new(32, 8, Dur(30));
        let a = fabric.reserve_routed(0, targets(&[1]), VTime(0), Dur(100), 64).unwrap();
        // A different segment's window does not wait for segment 0.
        let b = fabric.reserve_routed(8, targets(&[9]), VTime(0), Dur(100), 64).unwrap();
        assert_eq!(a.start, VTime(0));
        assert_eq!(b.start, VTime(0), "segments are independent broadcast domains");
        // But a forwarded frame occupies the remote segment's bus.
        let c = fabric.reserve_routed(0, targets(&[9]), VTime(0), Dur(50), 64).unwrap();
        assert_eq!(c.start, VTime(100));
        let d = fabric.reserve_routed(8, targets(&[9]), VTime(0), Dur(10), 64).unwrap();
        assert!(
            d.start >= VTime(200),
            "segment 1 is busy with its own window then the forwarded copy: {:?}",
            d.start
        );
    }

    #[test]
    fn fabric_armed_fault_hits_first_grant_anywhere() {
        let mut fabric = BusFabric::new(32, 8, Dur(30));
        fabric.arm_fault(VTime(5), WireFault::Drop);
        let clean = fabric.reserve_routed(0, targets(&[1]), VTime(0), Dur(4), 16).unwrap();
        assert_eq!(clean.fault, None, "start 0 < 5: clean");
        let hit = fabric.reserve_routed(8, targets(&[9]), VTime(6), Dur(4), 16).unwrap();
        assert_eq!(hit.fault, Some(WireFault::Drop), "fires on another segment's grant");
        let after = fabric.reserve_routed(16, targets(&[17]), VTime(6), Dur(4), 16).unwrap();
        assert_eq!(after.fault, None, "one-shot: consumed");
    }

    #[test]
    fn fleet_wide_failover_and_quarantine() {
        let mut fabric = BusFabric::new(32, 8, Dur(30));
        assert_eq!(fabric.fail_active(VTime(10)), Some(BusKind::B));
        let r = fabric.reserve_routed(20, targets(&[21]), VTime(10), Dur(5), 16).unwrap();
        assert_eq!(r.bus, BusKind::B, "every segment failed over");
        assert_eq!(fabric.quarantine(BusKind::B, VTime(20)), None, "no healthy standby left");
        assert!(!fabric.fail(BusKind::B), "second wire failing exhausts the pair");
        assert!(fabric.reserve_routed(0, targets(&[1]), VTime(30), Dur(5), 16).is_none());
    }
}
