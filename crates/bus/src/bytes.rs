//! Shared, immutable byte buffers for message payloads.
//!
//! The paper's bus hardware transmits a message once and lets every
//! target cluster read the same transmission (§7.4.2); nothing in the
//! design copies payload bytes per destination. [`SharedBytes`] gives
//! the simulation the same cost shape: the buffer is allocated once
//! when the payload enters the system (at the sending kernel's copy-in
//! from guest memory, or at a server's reply construction) and every
//! subsequent clone — per-target fan-out, the in-flight ledger, saved
//! backup queues, rebuild records — is a reference-count bump.
//!
//! The module also hosts the *allocation probe*: a process-wide counter
//! of fresh payload buffers, used by the perf baseline
//! (`BENCH_PR2.json`) and by the regression test that pins "one frame
//! to three clusters costs exactly one payload allocation".

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Fresh payload-buffer allocations since process start.
///
/// Counts buffers, not clones: [`SharedBytes::clone`] and
/// [`SharedBytes::slice`] never touch it, and zero-length buffers are
/// interned and free. Monotonic and `Relaxed` — the simulation is
/// single-threaded and the probe is only ever read for deltas.
// auros-lint: allow(S1) -- observability-only counter: monotonic, never read by sim logic, so no cross-cluster information can flow through it
static PAYLOAD_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Reads the allocation probe. Take a reading before and after the
/// region of interest and subtract.
pub fn payload_allocs() -> u64 {
    PAYLOAD_ALLOCS.load(Ordering::Relaxed)
}

fn empty_buf() -> Arc<[u8]> {
    // auros-lint: allow(S1) -- write-once interning of the immutable empty buffer: after init the cell is read-only, indistinguishable from a const
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

/// An immutable byte buffer with cheap clone and zero-copy slicing.
///
/// Equality, ordering and hashing are by content, so swapping a
/// `Vec<u8>` field for `SharedBytes` does not change any derived
/// semantics.
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl SharedBytes {
    /// The shared empty buffer; never allocates.
    pub fn empty() -> SharedBytes {
        SharedBytes { buf: empty_buf(), off: 0, len: 0 }
    }

    /// Copies `data` into a fresh shared buffer (one probe tick unless
    /// empty).
    pub fn copy_from(data: &[u8]) -> SharedBytes {
        if data.is_empty() {
            return SharedBytes::empty();
        }
        PAYLOAD_ALLOCS.fetch_add(1, Ordering::Relaxed);
        SharedBytes { buf: Arc::from(data), off: 0, len: data.len() }
    }

    /// Bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of `self`; shares the same buffer.
    ///
    /// # Panics
    /// Panics if `start..end` is out of bounds or inverted.
    pub fn slice(&self, start: usize, end: usize) -> SharedBytes {
        assert!(start <= end && end <= self.len, "slice {start}..{end} of {}", self.len);
        SharedBytes { buf: self.buf.clone(), off: self.off + start, len: end - start }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl Default for SharedBytes {
    fn default() -> SharedBytes {
        SharedBytes::empty()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> SharedBytes {
        if v.is_empty() {
            return SharedBytes::empty();
        }
        PAYLOAD_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let len = v.len();
        SharedBytes { buf: Arc::from(v), off: 0, len }
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(s: &[u8]) -> SharedBytes {
        SharedBytes::copy_from(s)
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SharedBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for SharedBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_the_buffer() {
        let before = payload_allocs();
        let b = SharedBytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(payload_allocs() - before, 1);
        let c = b.clone();
        let s = b.slice(1, 4);
        assert_eq!(payload_allocs() - before, 1, "clone and slice must not allocate");
        assert_eq!(c, b);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert!(Arc::ptr_eq(&b.buf, &s.buf));
    }

    #[test]
    fn empty_buffers_are_interned() {
        let before = payload_allocs();
        let a = SharedBytes::empty();
        let b = SharedBytes::from(Vec::new());
        let c = SharedBytes::copy_from(&[]);
        assert_eq!(payload_allocs(), before);
        assert!(a.is_empty() && b.is_empty() && c.is_empty());
    }

    #[test]
    fn content_equality_ignores_representation() {
        let a = SharedBytes::from(vec![9u8, 8, 7]);
        let b = SharedBytes::from(vec![0u8, 9, 8, 7]).slice(1, 4);
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "slice")]
    fn out_of_bounds_slice_panics() {
        SharedBytes::from(vec![1u8, 2]).slice(1, 3);
    }
}
