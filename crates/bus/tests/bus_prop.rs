//! Property tests of the bus guarantees the fault-tolerance scheme
//! rests on (§5.1): transmission windows are exclusive and ordered, so
//! a frame reaches all of its destinations before any later frame
//! reaches any of its destinations.

use auros_bus::proto::{ChanEnd, ChannelId, Side};
use auros_bus::{
    BusSchedule, DeliveryTag, Frame, FrameClass, LinkLedger, Message, MsgId, Payload, Pid,
};
use auros_sim::{Dur, VTime};
use proptest::prelude::*;

proptest! {
    /// Reserved windows never overlap and never reorder.
    #[test]
    fn prop_windows_disjoint_and_ordered(
        requests in proptest::collection::vec((0u64..10_000, 1u64..500, 0usize..4096), 1..300),
    ) {
        let mut bus = BusSchedule::new();
        let mut prev_end = VTime::ZERO;
        for (earliest, xmit, bytes) in requests {
            let r = bus.reserve(VTime(earliest), Dur(xmit), bytes).expect("healthy bus");
            prop_assert!(r.start >= prev_end, "window starts inside an earlier one");
            prop_assert!(r.start >= VTime(earliest), "window begins before the sender is ready");
            prop_assert_eq!(r.deliver_at, r.start + Dur(xmit));
            prev_end = r.deliver_at;
        }
    }

    /// Counters account exactly for what was reserved.
    #[test]
    fn prop_counters_are_exact(
        requests in proptest::collection::vec((1u64..100, 1usize..2048), 1..100),
    ) {
        let mut bus = BusSchedule::new();
        let mut busy = 0u64;
        let mut bytes_total = 0u64;
        for (xmit, bytes) in &requests {
            bus.reserve(VTime::ZERO, Dur(*xmit), *bytes);
            busy += xmit;
            bytes_total += *bytes as u64;
        }
        let c = bus.counters(auros_bus::BusKind::A);
        prop_assert_eq!(c.frames, requests.len() as u64);
        prop_assert_eq!(c.busy, busy);
        prop_assert_eq!(c.bytes, bytes_total);
    }

    /// Frame wire size is monotone in payload and target count, so the
    /// cost model can never be gamed by splitting.
    #[test]
    fn prop_wire_size_monotone(data_len in 0usize..4096, extra_targets in 0usize..3) {
        let end = ChanEnd { channel: ChannelId(1), side: Side::A };
        let base = Frame::new(
            auros_bus::ClusterId(0),
            vec![(auros_bus::ClusterId(1), DeliveryTag::Primary(end))],
            Message {
                id: MsgId(0),
                src: Pid(1),
                payload: Payload::Data(vec![0; data_len].into()),
                nondet: vec![],
            },
        );
        let mut bigger = base.clone();
        bigger.msg.payload = Payload::Data(vec![0; data_len + 1].into());
        for i in 0..extra_targets {
            bigger.targets.push((
                auros_bus::ClusterId(2 + i as u16),
                DeliveryTag::DestBackup(end),
            ));
        }
        prop_assert!(bigger.wire_size() > base.wire_size());
    }

    /// The reliable-delivery satellite property: under any seeded mix of
    /// drop (retransmit later), duplicate, and delay faults, the
    /// per-destination delivered sequence equals the fault-free sequence
    /// — idempotent, gap-free, and in order.
    #[test]
    fn prop_link_restores_fifo_under_faults(
        faults in proptest::collection::vec(0u8..4, 1..80),
    ) {
        let mut ledger = LinkLedger::default();
        let n = faults.len();
        // Sender: stamp frames 0..n on the link 0 -> 1.
        let stamped: Vec<u64> =
            (0..n).map(|_| ledger.stamp(0, [1u16].into_iter())[0]).collect();
        prop_assert_eq!(&stamped, &(0..n as u64).collect::<Vec<_>>());
        // Wire: assign each copy an arrival key the fault mix dictates.
        // Clean frames arrive at 2*seq; duplicates add a second copy one
        // key later; delayed frames slip past ~two successors; dropped
        // frames are retransmitted after everything else.
        let mut timeline: Vec<(u64, u64)> = Vec::new();
        for (i, f) in faults.iter().enumerate() {
            let seq = i as u64;
            let t = 2 * seq;
            match f {
                0 => timeline.push((t, seq)),
                1 => timeline.push((2 * n as u64 + seq, seq)),
                2 => {
                    timeline.push((t, seq));
                    timeline.push((t + 1, seq));
                }
                _ => timeline.push((t + 5, seq)),
            }
        }
        timeline.sort_by_key(|&(k, s)| (k, s));
        let arrivals: Vec<u64> = timeline.into_iter().map(|(_, s)| s).collect();
        // Receiver: classify each arrival, holding gap frames.
        let mut held: Vec<u64> = Vec::new();
        let mut delivered: Vec<u64> = Vec::new();
        let live = |_c: u16| true;
        let accept = |seq: u64, ledger: &mut LinkLedger, delivered: &mut Vec<u64>| {
            match ledger.classify(0, &[(1, seq)], live) {
                FrameClass::Ready => {
                    ledger.advance(0, &[(1, seq)]);
                    delivered.push(seq);
                    true
                }
                FrameClass::Duplicate => true,
                FrameClass::Hold => false,
            }
        };
        for seq in arrivals {
            if !accept(seq, &mut ledger, &mut delivered) {
                held.push(seq);
            }
            // Drain the hold buffer to a fixpoint after each arrival.
            loop {
                let before = held.len();
                held.retain(|&s| !accept(s, &mut ledger, &mut delivered));
                if held.len() == before {
                    break;
                }
            }
        }
        prop_assert!(held.is_empty(), "every frame eventually delivers");
        prop_assert_eq!(delivered, (0..n as u64).collect::<Vec<_>>(),
            "delivered sequence equals the fault-free sequence");
    }
}
