//! Property tests of the bus guarantees the fault-tolerance scheme
//! rests on (§5.1): transmission windows are exclusive and ordered, so
//! a frame reaches all of its destinations before any later frame
//! reaches any of its destinations.

use auros_bus::proto::{ChanEnd, ChannelId, Side};
use auros_bus::{BusSchedule, DeliveryTag, Frame, Message, MsgId, Payload, Pid};
use auros_sim::{Dur, VTime};
use proptest::prelude::*;

proptest! {
    /// Reserved windows never overlap and never reorder.
    #[test]
    fn prop_windows_disjoint_and_ordered(
        requests in proptest::collection::vec((0u64..10_000, 1u64..500, 0usize..4096), 1..300),
    ) {
        let mut bus = BusSchedule::new();
        let mut prev_end = VTime::ZERO;
        for (earliest, xmit, bytes) in requests {
            let (start, end) =
                bus.reserve(VTime(earliest), Dur(xmit), bytes).expect("healthy bus");
            prop_assert!(start >= prev_end, "window starts inside an earlier one");
            prop_assert!(start >= VTime(earliest), "window begins before the sender is ready");
            prop_assert_eq!(end, start + Dur(xmit));
            prev_end = end;
        }
    }

    /// Counters account exactly for what was reserved.
    #[test]
    fn prop_counters_are_exact(
        requests in proptest::collection::vec((1u64..100, 1usize..2048), 1..100),
    ) {
        let mut bus = BusSchedule::new();
        let mut busy = 0u64;
        let mut bytes_total = 0u64;
        for (xmit, bytes) in &requests {
            bus.reserve(VTime::ZERO, Dur(*xmit), *bytes);
            busy += xmit;
            bytes_total += *bytes as u64;
        }
        let c = bus.counters(auros_bus::BusKind::A);
        prop_assert_eq!(c.frames, requests.len() as u64);
        prop_assert_eq!(c.busy, busy);
        prop_assert_eq!(c.bytes, bytes_total);
    }

    /// Frame wire size is monotone in payload and target count, so the
    /// cost model can never be gamed by splitting.
    #[test]
    fn prop_wire_size_monotone(data_len in 0usize..4096, extra_targets in 0usize..3) {
        let end = ChanEnd { channel: ChannelId(1), side: Side::A };
        let base = Frame {
            src_cluster: auros_bus::ClusterId(0),
            targets: vec![(auros_bus::ClusterId(1), DeliveryTag::Primary(end))],
            msg: Message {
                id: MsgId(0),
                src: Pid(1),
                payload: Payload::Data(vec![0; data_len].into()),
                nondet: vec![],
            },
        };
        let mut bigger = base.clone();
        bigger.msg.payload = Payload::Data(vec![0; data_len + 1].into());
        for i in 0..extra_targets {
            bigger.targets.push((
                auros_bus::ClusterId(2 + i as u16),
                DeliveryTag::DestBackup(end),
            ));
        }
        prop_assert!(bigger.wire_size() > base.wire_size());
    }
}
