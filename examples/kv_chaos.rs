//! KV chaos: generate a seeded traffic workload, drive the replicated
//! KV store with it, crash a client's home cluster mid-traffic, and
//! prove no acknowledged write was lost — the durable state and every
//! ack ledger still match the model computed from the trace alone.
//!
//! ```sh
//! cargo run --example kv_chaos
//! ```

use auros::apps::AppWorkload;
use auros::{SystemBuilder, VTime};

fn run(app: &AppWorkload, crash: bool) -> auros::System {
    let mut b = SystemBuilder::new(4);
    app.install(&mut b);
    if crash {
        b.crash_at(VTime(6_500), 2);
    }
    let mut sys = b.build();
    assert!(sys.run(VTime(5_000_000)), "workload completes");
    sys
}

fn main() {
    let app = AppWorkload::kv(0xA5);
    println!("=== traffic spec ===");
    println!(
        "seed {:#x}: {} sessions, {} ops, stream fingerprint {:#018x}",
        app.spec.seed,
        app.trace.sessions.len(),
        app.trace.total_ops(),
        app.trace.fingerprint()
    );

    println!("\n=== fault-free run ===");
    let mut clean = run(&app, false);
    let violations = app.check(&mut clean);
    assert!(violations.is_empty(), "fault-free model violations: {violations:?}");
    let state = clean.file_contents("/kv_state").expect("durable state exists");
    println!("model check passed; /kv_state holds {} keys", state.len() / 24);

    println!("\n=== same workload, cluster 2 crashes at t=6500 ===");
    let mut crashed = run(&app, true);
    let violations = app.check(&mut crashed);
    assert!(violations.is_empty(), "crash run model violations: {violations:?}");
    assert_eq!(clean.digest(), crashed.digest(), "the crash must be externally invisible");
    println!("model check passed again: every acknowledged write survived the crash.");
    println!(
        "promotions: {}",
        crashed.world.stats.clusters.iter().map(|c| c.promotions).sum::<u64>()
    );
}
