//! The three backup modes (§7.3) under repeated failures.
//!
//! * **Quarterbacks** survive one crash and then run bare;
//! * **halfbacks** are re-protected when the dead cluster returns;
//! * **fullbacks** get a new backup before the new primary runs.
//!
//! ```sh
//! cargo run --example backup_modes
//! ```

use auros::{programs, BackupMode, SystemBuilder, VTime};

fn survives(mode: BackupMode, plan: &[(u64, u16, bool)]) -> bool {
    let mut b = SystemBuilder::new(4);
    b.spawn_with_mode(0, programs::pingpong("m", 600, true), mode);
    b.spawn_with_mode(1, programs::pingpong("m", 600, false), mode);
    for (at, cluster, restore) in plan {
        if *restore {
            b.restore_at(VTime(*at), *cluster);
        } else {
            b.crash_at(VTime(*at), *cluster);
        }
    }
    let mut sys = b.build();
    sys.run(VTime(3_000_000))
}

fn main() {
    let one_crash: &[(u64, u16, bool)] = &[(8_000, 0, false)];
    let two_crashes: &[(u64, u16, bool)] = &[(8_000, 0, false), (50_000, 1, false)];
    let crash_restore_crash: &[(u64, u16, bool)] =
        &[(8_000, 0, false), (25_000, 0, true), (60_000, 1, false)];

    println!(
        "{:<14} {:>10} {:>12} {:>22}",
        "mode", "one crash", "two crashes", "crash+restore+crash"
    );
    for mode in [BackupMode::Quarterback, BackupMode::Halfback, BackupMode::Fullback] {
        let a = survives(mode, one_crash);
        let b = survives(mode, two_crashes);
        let c = survives(mode, crash_restore_crash);
        println!("{:<14} {:>10} {:>12} {:>22}", format!("{mode:?}"), a, b, c);
    }
    println!();
    println!("quarterback: survives one failure, then runs bare — a second failure");
    println!("             anywhere near it is fatal (the default; §7.3).");
    println!("halfback:    re-protected when the dead cluster returns, so the");
    println!("             crash→restore→crash sequence survives.");
    println!("fullback:    re-protected immediately, before the new primary runs.");
    println!();
    println!("No mode survives two outstanding failures: the paper tolerates a");
    println!("*single* failure (§3.1) — with two clusters down, some dual-ported");
    println!("device (page store, file disk) has lost both of its hosts.");
}
