//! On-line transaction processing (§3): a bank server and three clients,
//! with a mid-stream crash of the cluster hosting the bank *and* the
//! page/file servers. No transaction is lost or applied twice.
//!
//! ```sh
//! cargo run --example transaction_processing
//! ```

use auros::{programs, SystemBuilder, VTime};

const TX_PER_CLIENT: u64 = 120;

fn run(crash: Option<u64>) -> Vec<Option<u64>> {
    let mut b = SystemBuilder::new(4);
    // One serialized bank with a channel per client (bunch/which,
    // §7.5.1); three clients contend. Every quoted balance feeds each
    // client's checksum, so a lost or duplicated transaction shows up in
    // *someone's* exit status.
    b.spawn(0, programs::bank_server_multi("bank", 3, 3 * TX_PER_CLIENT));
    b.spawn(1, programs::bank_client_at("bank0", TX_PER_CLIENT, 32, 0, 1));
    b.spawn(2, programs::bank_client_at("bank1", TX_PER_CLIENT, 32, 32, 2));
    b.spawn(3, programs::bank_client_at("bank2", TX_PER_CLIENT, 32, 64, 3));
    if let Some(at) = crash {
        b.crash_at(VTime(at), 0);
    }
    let mut sys = b.build();
    assert!(sys.run(VTime(400_000_000)), "workload must complete");
    (0..4).map(|i| sys.exit_of(i)).collect()
}

fn main() {
    println!("running {} transactions across 3 clients…", 3 * TX_PER_CLIENT);
    let clean = run(None);
    println!("fault-free checksums: {clean:?}");
    for at in [8_000u64, 20_000, 45_000] {
        let crashed = run(Some(at));
        println!("crash at t={at:>6}:     {crashed:?}");
        assert_eq!(clean, crashed, "transactions lost or duplicated!");
    }
    println!("\nall checksums identical: exactly-once transaction semantics held");
    println!("through every crash (saved queues + §5.4 duplicate suppression).");
}
