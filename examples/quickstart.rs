//! Quickstart: build a three-cluster Auragen 4000, run a two-process
//! conversation, crash a cluster mid-flight, and watch nothing change.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use auros::{programs, report, topology, SystemBuilder, VTime};

fn run(crash: bool) -> (auros::RunDigest, u64, u64, bool) {
    let mut b = SystemBuilder::new(3);
    b.spawn(0, programs::pingpong("demo", 200, true));
    b.spawn(1, programs::pingpong("demo", 200, false));
    if crash {
        b.crash_at(VTime(10_000), 0);
    }
    let mut sys = b.build();
    let done = sys.run(VTime(100_000_000));
    if !crash {
        println!("{}", topology::render(&sys));
    }
    if crash {
        println!("{}", report::render(&sys));
    }
    let promotions = sys.world.stats.clusters.iter().map(|c| c.promotions).sum();
    let suppressed = sys.world.stats.total_suppressed();
    (sys.digest(), promotions, suppressed, done)
}

fn main() {
    println!("=== fault-free run ===");
    let (clean, _, _, done) = run(false);
    assert!(done);
    println!("fault-free digest: {:#018x}\n", clean.fingerprint());

    println!("=== same workload, cluster 0 crashes at t=10000 ===");
    let (crashed, promotions, suppressed, done) = run(true);
    assert!(done);
    println!("promotions: {promotions} (the pingponger + the page and file servers)");
    println!("duplicate sends suppressed during rollforward: {suppressed}");
    println!("crashed-run digest:  {:#018x}", crashed.fingerprint());

    assert_eq!(clean, crashed, "the crash must be externally invisible");
    println!("\ndigests identical: the failure was transparent (§3.3, §6).");
}
