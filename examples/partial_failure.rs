//! The §10 extension, live: "Hardware failures which do not affect all
//! processes in a cluster will not cause the cluster to crash, but will
//! cause individual backups to be brought up for the affected processes."
//!
//! A bank and a bystander share cluster 0; the bank's hardware fails,
//! and while its backup is being brought up the active intercluster bus
//! dies too. The cluster stays up, the standby bus takes over, the
//! bystander never notices, and the bank's backup resumes mid-stream
//! elsewhere.
//!
//! ```sh
//! cargo run --example partial_failure
//! ```

use auros::fault::FaultEvent;
use auros::{programs, SystemBuilder, VTime};

fn run(plan: &[FaultEvent]) -> (Vec<Option<u64>>, bool, u64, u64) {
    let mut b = SystemBuilder::new(3);
    let _bank = b.spawn(0, programs::bank_server("pf-bank", 200));
    let _client = b.spawn(1, programs::bank_client("pf-bank", 200, 16, 5));
    let _bystander = b.spawn(0, programs::compute_loop(400, 4));
    b.fault_plan(plan.iter().copied());
    let mut sys = b.build();
    assert!(sys.run(VTime(400_000_000)), "everything completes");
    let exits = (0..3).map(|i| sys.exit_of(i)).collect();
    let all_up = sys.world.clusters.iter().all(|c| c.alive);
    let promotions = sys.world.stats.clusters.iter().map(|c| c.promotions).sum();
    let failovers = sys.world.stats.bus_failovers;
    (exits, all_up, promotions, failovers)
}

fn main() {
    let (clean, _, _, _) = run(&[]);
    println!("fault-free exits:         {clean:?}");
    // Spawn index 0 is the bank. Kill its hardware, then the active bus
    // while the promoted backup is still re-establishing its channels.
    let plan = [
        FaultEvent::ProcessFail { at: VTime(12_000), spawn: 0 },
        FaultEvent::BusFail { at: VTime(13_000) },
    ];
    let (failed, all_up, promotions, failovers) = run(&plan);
    println!("with partial failure:     {failed:?}");
    println!("all clusters still up:    {all_up}");
    println!("processes promoted:       {promotions} (just the bank)");
    println!("bus failovers:            {failovers} (standby took over)");
    assert_eq!(clean, failed);
    assert!(all_up);
    assert_eq!(promotions, 1);
    assert_eq!(failovers, 1);
    println!();
    println!("the victim moved, its correspondents were re-routed over the");
    println!("standby bus, and the colocated bystander never stopped — no");
    println!("cluster-wide crash (§10).");
}
