//! The §10 extension, live: "Hardware failures which do not affect all
//! processes in a cluster will not cause the cluster to crash, but will
//! cause individual backups to be brought up for the affected processes."
//!
//! A bank and a bystander share cluster 0; the bank's hardware fails.
//! The cluster stays up, the bystander never notices, and the bank's
//! backup resumes mid-stream elsewhere.
//!
//! ```sh
//! cargo run --example partial_failure
//! ```

use auros::{programs, SystemBuilder, VTime};

fn run(fail: bool) -> (Vec<Option<u64>>, bool, u64) {
    let mut b = SystemBuilder::new(3);
    let bank = b.spawn(0, programs::bank_server("pf-bank", 200));
    let _client = b.spawn(1, programs::bank_client("pf-bank", 200, 16, 5));
    let _bystander = b.spawn(0, programs::compute_loop(400, 4));
    if fail {
        b.fail_process_at(VTime(12_000), bank);
    }
    let mut sys = b.build();
    assert!(sys.run(VTime(400_000_000)), "everything completes");
    let exits = (0..3).map(|i| sys.exit_of(i)).collect();
    let all_up = sys.world.clusters.iter().all(|c| c.alive);
    let promotions = sys.world.stats.clusters.iter().map(|c| c.promotions).sum();
    (exits, all_up, promotions)
}

fn main() {
    let (clean, _, _) = run(false);
    println!("fault-free exits:         {clean:?}");
    let (failed, all_up, promotions) = run(true);
    println!("with partial failure:     {failed:?}");
    println!("all clusters still up:    {all_up}");
    println!("processes promoted:       {promotions} (just the bank)");
    assert_eq!(clean, failed);
    assert!(all_up);
    assert_eq!(promotions, 1);
    println!();
    println!("the victim moved, its correspondents were re-routed, and the");
    println!("colocated bystander never stopped — no cluster-wide crash (§10).");
}
