//! An interactive terminal session (§7.6's tty server): a user types at
//! a dual-ported terminal whose tty server cluster crashes mid-session.
//! The interface hardware holds unacknowledged input and uncommitted
//! output across the failure; a control-C becomes a SIGINT that the
//! session program catches.
//!
//! ```sh
//! cargo run --example terminal_session
//! ```

use auros::{programs, SystemBuilder, VTime};

fn run(crash: bool) -> (Vec<u8>, Option<u64>) {
    let mut b = SystemBuilder::new(3);
    b.terminals(1); // tty:0 — server in cluster 0, backup in cluster 1
    let echo = b.spawn(2, programs::tty_session("tty:0", 3));
    b.type_at(VTime(30_000), 0, b"first line\n");
    b.type_at(VTime(90_000), 0, b"second line\n");
    b.type_at(VTime(150_000), 0, b"third line\n");
    if crash {
        // Between the first and second line: the tty server is promoted.
        b.crash_at(VTime(60_000), 0);
    }
    let mut sys = b.build();
    assert!(sys.run(VTime(400_000_000)));
    let _ = echo;
    (sys.terminal_output(0), sys.exit_of(0))
}

fn main() {
    let (clean_out, clean_exit) = run(false);
    println!("fault-free session: {:?}", String::from_utf8_lossy(&clean_out));
    let (crashed_out, crashed_exit) = run(true);
    println!("with tty-cluster crash at t=60000: {:?}", String::from_utf8_lossy(&crashed_out));
    assert_eq!(clean_out, crashed_out, "the user must not see the failure");
    assert_eq!(clean_exit, crashed_exit);
    println!("\nthe user at the terminal noticed at most a short delay (§3.3).");
}
