//! A three-stage dataflow pipeline spanning three clusters; the middle
//! stage's cluster dies and its inactive backup rolls forward from the
//! last sync, consuming saved messages and skipping already-sent output
//! (§5.4). The sink's checksum proves the stream was neither torn nor
//! duplicated.
//!
//! ```sh
//! cargo run --example pipeline_recovery
//! ```

use auros::{programs, SystemBuilder, VTime};

const ITEMS: u64 = 150;

fn run(crash: Option<u64>) -> (Option<u64>, u64) {
    let mut b = SystemBuilder::new(3);
    b.spawn(0, programs::producer("raw", ITEMS));
    b.spawn(1, programs::pipeline_stage("raw", "cooked", ITEMS));
    b.spawn(2, programs::consumer("cooked", ITEMS));
    if let Some(at) = crash {
        b.crash_at(VTime(at), 1);
    }
    let mut sys = b.build();
    assert!(sys.run(VTime(400_000_000)));
    let suppressed = sys.world.stats.total_suppressed();
    (sys.exit_of(2), suppressed)
}

fn main() {
    let expected: u64 = (0..ITEMS)
        .map(|i| {
            let v = i.wrapping_mul(2_654_435_761).wrapping_add(17);
            v.wrapping_mul(3).wrapping_add(7)
        })
        .fold(0u64, |a, v| a.wrapping_add(v));
    let (clean, _) = run(None);
    println!("sink checksum (fault-free): {clean:?} — expected {expected}");
    assert_eq!(clean, Some(expected));
    for at in [6_000u64, 15_000, 30_000] {
        let (crashed, suppressed) = run(Some(at));
        println!(
            "crash of the middle stage at t={at:>6}: checksum {crashed:?}, \
             {suppressed} duplicate sends suppressed"
        );
        assert_eq!(crashed, Some(expected));
    }
    println!("\nthe stream survived every crash intact: no item lost, none doubled.");
}
