//! The reliable-delivery layer under explicit transient wire faults.
//!
//! §5.1's atomic delivery and §3.3's transparency are promises about
//! what *applications* observe; these tests inject the faults the wire
//! can actually commit — losing a frame, mangling its bits, echoing it,
//! delivering it late — and hold the run to the same oracle as a
//! fault-free twin: identical exit statuses, identical files, identical
//! terminal output, structurally sound survivors. The wire may
//! misbehave; the message system may not.

use auros::bus::BusKind;
use auros::chaos;
use auros::oracle::check_survival;
use auros::{programs, BackupMode, Dur, SystemBuilder, VTime};

/// Hard stop for each run, far beyond normal completion.
const DEADLINE: VTime = VTime(5_000_000);

/// Cross-cluster rendezvous traffic in the paper's flagship fullback
/// mode: every frame carries the §5.1 three-way delivery, so every
/// injected wire fault attacks an atomic broadcast.
fn workload(b: &mut SystemBuilder) {
    b.spawn_with_mode(0, programs::pingpong("wire", 40, true), BackupMode::Fullback);
    b.spawn_with_mode(1, programs::pingpong("wire", 40, false), BackupMode::Fullback);
    b.spawn_with_mode(2, programs::file_writer("/wire", 6, 32), BackupMode::Fullback);
}

fn clean_digest() -> auros::RunDigest {
    let mut b = SystemBuilder::new(3);
    workload(&mut b);
    let mut sys = b.build();
    assert!(sys.run(DEADLINE), "fault-free workload must complete");
    sys.digest()
}

#[test]
fn drop_corrupt_duplicate_delay_mix_is_invisible_to_applications() {
    let clean = clean_digest();

    let mut b = SystemBuilder::new(3);
    workload(&mut b);
    b.drop_frame_at(VTime(3_000))
        .corrupt_frame_at(VTime(6_000))
        .duplicate_frame_at(VTime(9_000))
        .delay_frame_at(VTime(12_000), Dur(2_000))
        .drop_frame_at(VTime(15_000));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE), "faulted workload must complete");

    // Externally indistinguishable from the fault-free twin.
    assert_eq!(sys.digest(), clean, "transient wire faults leaked to applications");
    let survival = check_survival(&sys);
    assert!(survival.ok(), "survivors unsound: {:?}", survival.violations);

    // Every armed fault fired, and the protocol machinery answered it.
    let s = &sys.world.stats;
    assert_eq!(s.wire_drops, 2, "both armed drops must fire");
    assert_eq!(s.wire_corruptions, 1);
    assert_eq!(s.wire_duplicates, 1);
    assert_eq!(s.wire_delays, 1);
    assert_eq!(s.corruptions_caught, s.wire_corruptions, "a corruption escaped the checksum");
    assert!(s.naks >= 1, "the caught corruption must be NAKed");
    assert!(s.proto_retransmits >= 3, "drops and corruption all force retransmission");
    assert!(s.dup_suppressed >= 1, "the echoed frame must be suppressed");
    assert_eq!(s.frames_abandoned, 0, "no frame may be given up under this mix");
}

#[test]
fn transient_faulted_run_is_deterministic_across_reruns() {
    let run = || {
        let mut b = SystemBuilder::new(3);
        workload(&mut b);
        b.drop_frame_at(VTime(3_000))
            .corrupt_frame_at(VTime(6_000))
            .duplicate_frame_at(VTime(9_000))
            .delay_frame_at(VTime(12_000), Dur(2_000));
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        let fingerprint = sys.digest().fingerprint();
        let s = &sys.world.stats;
        (
            fingerprint,
            sys.now(),
            (s.proto_retransmits, s.naks, s.dup_suppressed, s.frames_reordered),
        )
    };
    assert_eq!(run(), run(), "same plan, same seed, different run");
}

#[test]
fn delayed_frame_is_reordered_back_not_lost() {
    let clean = clean_digest();
    let mut b = SystemBuilder::new(3);
    workload(&mut b);
    // Late enough for successors on the same link to overtake it.
    b.delay_frame_at(VTime(5_000), Dur(3_000));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.digest(), clean);
    let s = &sys.world.stats;
    assert_eq!(s.wire_delays, 1);
    assert_eq!(s.frames_abandoned, 0);
}

#[test]
fn flaky_bus_window_trips_quarantine_then_probes_heal_it() {
    let clean = clean_digest();

    let mut b = SystemBuilder::new(3);
    workload(&mut b);
    // Every window bus A grants in [4000, 14000) suffers a wire fault:
    // enough consecutive casualties to trip quarantine (default 3).
    b.flaky_bus(VTime(4_000), VTime(14_000), BusKind::A);
    let mut sys = b.build();
    assert!(sys.run(DEADLINE), "flaky-window workload must complete");

    assert_eq!(sys.digest(), clean, "a flaky bus window leaked to applications");
    let survival = check_survival(&sys);
    assert!(survival.ok(), "survivors unsound: {:?}", survival.violations);

    let s = &sys.world.stats;
    assert!(s.wire_faults() >= 3, "the window must actually strike traffic");
    assert!(s.quarantines >= 1, "sustained flakiness must bench the bus");
    assert!(s.probes >= 1, "a benched bus must be probed");
    assert_eq!(s.heals, s.quarantines, "every benched bus must heal after the window");
    assert!(
        !sys.world.bus.is_quarantined(BusKind::A) && !sys.world.bus.is_quarantined(BusKind::B),
        "no bus may stay benched at rest"
    );
}

#[test]
fn backpressure_forces_sync_and_bounds_backup_queue_depth() {
    let clean = clean_digest();

    let mut b = SystemBuilder::new(3);
    workload(&mut b);
    // Make the ordinary read-count sync trigger unreachable, so only
    // backpressure can trim the backup queues...
    b.config_mut().sync_max_reads = 1_000_000;
    b.config_mut().sync_max_fuel = u64::MAX;
    // ...and bound them tightly.
    let limit = 4usize;
    b.config_mut().backup_queue_limit = Some(limit);
    let mut sys = b.build();
    assert!(sys.run(DEADLINE), "backpressured workload must complete");

    assert_eq!(sys.digest(), clean, "forced syncs leaked to applications");
    let s = &sys.world.stats;
    assert!(s.forced_syncs >= 1, "the queue bound must force at least one sync");
    // The demand is raised when a queue *reaches* the limit and the sync
    // completes a bus round-trip later, so the depth may overshoot by
    // the handful of messages still in flight — but it must stay a
    // small constant, not grow with the workload's 40 rounds.
    assert!(
        s.max_backup_queue_depth <= (limit as u64) * 3,
        "backup queue depth {} not bounded near the limit {limit}",
        s.max_backup_queue_depth
    );

    // Without the bound (and without read-triggered syncs) the deepest
    // queue grows with the workload instead.
    let mut b = SystemBuilder::new(3);
    workload(&mut b);
    b.config_mut().sync_max_reads = 1_000_000;
    b.config_mut().sync_max_fuel = u64::MAX;
    let mut unbounded = b.build();
    assert!(unbounded.run(DEADLINE));
    assert!(
        unbounded.world.stats.max_backup_queue_depth > s.max_backup_queue_depth,
        "bound had no effect: {} vs {}",
        unbounded.world.stats.max_backup_queue_depth,
        s.max_backup_queue_depth
    );
}

#[test]
fn transient_plans_in_the_sweep_report_their_machinery() {
    // A focused mini-sweep: sample until both transient shapes appear,
    // then check their outcomes were held to the full oracle.
    let report = chaos::run_sweep(&chaos::ChaosConfig {
        seed: 0xA42_0005,
        plans: 40,
        ..chaos::ChaosConfig::default()
    });
    assert!(report.failures.is_empty(), "oracle failures:\n{}", report.summary());
    assert!(report.count_of(chaos::PlanKind::TransientMix) > 0);
    assert!(report.count_of(chaos::PlanKind::FlakyBusWindow) > 0);
    for o in &report.outcomes {
        if matches!(o.kind, chaos::PlanKind::TransientMix | chaos::PlanKind::FlakyBusWindow) {
            assert!(o.survived, "transient plan {} must survive:\n{}", o.index, report.summary());
        }
    }
}
