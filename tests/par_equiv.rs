//! `par_equals_seq`: the tier-1 equivalence invariant of parallel
//! execution.
//!
//! The same seed run sequentially and with N worker threads must be
//! *indistinguishable* — not statistically, byte-for-byte: identical
//! per-category trace fingerprints, identical event and eviction counts,
//! identical metrics (every counter and histogram), identical exit
//! codes, identical durable file and terminal bytes, identical
//! blocked-wait histogram, identical virtual makespan. The sweep runs
//! representative chaos plan shapes (TransientMix, CascadeFailover,
//! CrashLoop, ZoneOutage) across the baseline workload and all three
//! model-checked apps, so recovery, supervision, and dead-letter paths
//! are all exercised under parallel execution.
//!
//! On divergence, the flight-recorder differ names the first divergent
//! event instead of leaving two opaque fingerprints.

use auros::chaos::{build_scenario, plan_of_kind, PlanKind, Scenario, SWEEP_DEADLINE};
use auros::sim::TraceEvent;
use auros::RunDigest;
use auros_par::ThreadedSliceRunner;
use proptest::prelude::*;

const SEED: u64 = 0xA42_0010;

/// The plan shapes the equivalence sweep pins (one per fault family:
/// wire-level transients, correlated crash cascade, poison crash-loop
/// with quarantine, zone-wide outage).
const KINDS: [PlanKind; 4] =
    [PlanKind::TransientMix, PlanKind::CascadeFailover, PlanKind::CrashLoop, PlanKind::ZoneOutage];

/// Everything observable about one run.
struct RunRecord {
    completed: bool,
    makespan: u64,
    events_processed: u64,
    fingerprints: [u64; 9],
    trace_len: usize,
    trace_evicted: u64,
    digest: RunDigest,
    counters: Vec<(String, u64)>,
    hists: Vec<(String, u64, u64, u64, u64)>,
    wait_hist: [u64; 32],
    trace: Vec<TraceEvent>,
}

/// Runs one sweep scenario; `workers == 0` is the sequential path.
fn run_one(seed: u64, scenario: Scenario, kind: PlanKind, workers: usize) -> RunRecord {
    let plan = plan_of_kind(seed, kind, scenario);
    let mut sys = build_scenario(seed, scenario, &plan);
    if workers > 0 {
        sys.set_slice_runner(Box::new(ThreadedSliceRunner::new(workers)));
    }
    let completed = sys.run(SWEEP_DEADLINE);
    let reg = sys.metrics();
    let counters = reg.counters().map(|(k, v)| (k.to_string(), v)).collect();
    let hists = reg
        .histograms()
        .map(|(k, h)| (k.to_string(), h.count(), h.sum(), h.min(), h.max()))
        .collect();
    RunRecord {
        completed,
        makespan: sys.now().ticks(),
        events_processed: sys.world.events_processed,
        fingerprints: sys.world.trace.fingerprints(),
        trace_len: sys.world.trace.len(),
        trace_evicted: sys.world.trace.evicted(),
        digest: sys.digest(),
        counters,
        hists,
        wait_hist: sys.world.stats.wait_hist,
        trace: sys.world.trace.snapshot(),
    }
}

/// The equivalence predicate. Returns an explanation of the first
/// difference found, localized via the flight-recorder differ where the
/// traces themselves diverge.
fn par_equals_seq(seq: &RunRecord, par: &RunRecord) -> Result<(), String> {
    if seq.completed != par.completed {
        return Err(format!("completed: seq {} vs par {}", seq.completed, par.completed));
    }
    if seq.fingerprints != par.fingerprints
        || seq.trace_len != par.trace_len
        || seq.trace_evicted != par.trace_evicted
    {
        let diff = auros::sim::first_divergence(&seq.trace, &par.trace)
            .map_or_else(|| "divergence beyond the trace ring".to_string(), |d| d.to_string());
        return Err(format!(
            "trace streams differ (len {} vs {}, evicted {} vs {}): {diff}",
            seq.trace_len, par.trace_len, seq.trace_evicted, par.trace_evicted,
        ));
    }
    if seq.makespan != par.makespan {
        return Err(format!("virtual makespan: seq {} vs par {}", seq.makespan, par.makespan));
    }
    if seq.events_processed != par.events_processed {
        return Err(format!(
            "events processed: seq {} vs par {}",
            seq.events_processed, par.events_processed
        ));
    }
    if seq.digest != par.digest {
        return Err("run digest (exits / file bytes / terminal bytes) differs".to_string());
    }
    for (s, p) in seq.counters.iter().zip(par.counters.iter()) {
        if s != p {
            return Err(format!("counter {}={} vs {}={}", s.0, s.1, p.0, p.1));
        }
    }
    if seq.counters.len() != par.counters.len() {
        return Err(format!(
            "counter sets differ in size: {} vs {}",
            seq.counters.len(),
            par.counters.len()
        ));
    }
    for (s, p) in seq.hists.iter().zip(par.hists.iter()) {
        if s != p {
            return Err(format!("histogram {} differs: {s:?} vs {p:?}", s.0));
        }
    }
    if seq.hists.len() != par.hists.len() {
        return Err("histogram sets differ in size".to_string());
    }
    if seq.wait_hist != par.wait_hist {
        return Err(format!(
            "wait histogram differs:\n  seq {:?}\n  par {:?}",
            seq.wait_hist, par.wait_hist
        ));
    }
    Ok(())
}

fn sweep_scenario(scenario: Scenario) {
    for kind in KINDS {
        let seq = run_one(SEED, scenario, kind, 0);
        for workers in [2, 4] {
            let par = run_one(SEED, scenario, kind, workers);
            if let Err(e) = par_equals_seq(&seq, &par) {
                panic!("par_equals_seq failed: {scenario:?}/{kind:?} with {workers} workers: {e}");
            }
        }
    }
}

// The tier-1 matrix: every plan shape × every workload, seq vs 2 and 4
// workers. One test per scenario so the harness runs them concurrently.

#[test]
fn par_equals_seq_baseline() {
    sweep_scenario(Scenario::Baseline);
}

#[test]
fn par_equals_seq_kv_store() {
    sweep_scenario(Scenario::KvStore);
}

#[test]
fn par_equals_seq_chat_fanout() {
    sweep_scenario(Scenario::ChatFanout);
}

#[test]
fn par_equals_seq_etl_pipeline() {
    sweep_scenario(Scenario::EtlPipeline);
}

/// Focused regression for the blocked-wait histogram (PR 9): its 32
/// buckets must be byte-identical across worker counts — waits close at
/// wake time, which parallel execution must not shift by a tick.
#[test]
fn wait_histogram_is_worker_count_independent() {
    let seq = run_one(SEED, Scenario::Baseline, PlanKind::CascadeFailover, 0);
    assert!(seq.wait_hist.iter().any(|&b| b > 0), "workload must record waits");
    for workers in [1, 2, 4, 7] {
        let par = run_one(SEED, Scenario::Baseline, PlanKind::CascadeFailover, workers);
        assert_eq!(seq.wait_hist, par.wait_hist, "wait_hist diverged at {workers} workers");
    }
}

/// CI smoke: a 64-cluster, bus-segmented fleet (one pingpong pair per
/// cluster chained around the ring, plus per-cluster compute) run
/// sequentially and with 2 workers. Covers the multi-segment
/// partition/affinity path the 4-cluster chaos machine never touches.
#[test]
fn par_smoke_fleet_64() {
    use auros::{programs, SystemBuilder, VTime};
    let build = || {
        let clusters = 64u16;
        let mut b = SystemBuilder::new(clusters);
        b.config_mut().bus_segment_size = 32;
        let scale = u64::from(clusters / 32).max(1);
        let base = b.config_mut().costs.report_interval;
        b.config_mut().costs.report_interval = base.saturating_mul(scale);
        b.config_mut().sync_max_reads *= scale;
        for c in 0..clusters {
            let name = format!("s{c}");
            b.spawn(c, programs::pingpong(&name, 4, true));
            b.spawn((c + 1) % clusters, programs::pingpong(&name, 4, false));
            if c % 8 == 0 {
                b.spawn(c, programs::compute_loop(400, 2));
            }
        }
        b.build()
    };
    let deadline = VTime(40_000_000_000);
    let record = |workers: usize| {
        let mut sys = build();
        if workers > 0 {
            sys.set_slice_runner(Box::new(ThreadedSliceRunner::new(workers)));
        }
        assert!(sys.run(deadline), "fleet workload must complete ({workers} workers)");
        (
            sys.world.trace.fingerprints(),
            sys.world.events_processed,
            sys.now().ticks(),
            sys.digest(),
        )
    };
    let seq = record(0);
    let par = record(2);
    assert_eq!(seq.0, par.0, "fleet trace fingerprints diverged");
    assert_eq!(seq.1, par.1, "fleet event counts diverged");
    assert_eq!(seq.2, par.2, "fleet makespan diverged");
    assert!(seq.3 == par.3, "fleet digest diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random (seed, workers, plan kind) triples always satisfy
    /// `par_equals_seq`; shrunk failures carry the first-divergence
    /// report, so a regression names the exact event where parallel
    /// execution first departed from sequential.
    #[test]
    fn prop_par_equals_seq(
        seed in 1u64..1_000_000,
        workers in prop_oneof![Just(1usize), Just(2), Just(4), Just(7)],
        kind_idx in 0usize..4,
    ) {
        let kind = KINDS[kind_idx];
        let seq = run_one(seed, Scenario::Baseline, kind, 0);
        let par = run_one(seed, Scenario::Baseline, kind, workers);
        if let Err(e) = par_equals_seq(&seq, &par) {
            prop_assert!(false, "{kind:?} with {workers} workers, seed {seed}: {e}");
        }
    }
}
