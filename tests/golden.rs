//! Golden digests: canonical workloads pinned by fingerprint.
//!
//! The simulation is a pure function of its inputs, so these values are
//! stable across machines and runs. A change here means the system's
//! observable semantics changed — which must be deliberate. (Timing-only
//! changes — cost-model tweaks — legitimately move fingerprints of
//! workloads with cross-channel races; the pinned workloads below avoid
//! those, so only semantic changes or serialization-visible timing
//! changes touch them.)

use auros::{programs, SystemBuilder, VTime};

const DEADLINE: VTime = VTime(400_000_000);

fn fp(build: impl FnOnce(&mut SystemBuilder)) -> u64 {
    let mut b = SystemBuilder::new(3);
    build(&mut b);
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    sys.digest().fingerprint()
}

/// Recomputes and compares; on mismatch prints the new value so a
/// deliberate change can update the constant.
fn check(name: &str, got: u64, want: u64) {
    assert_eq!(got, want, "golden digest changed for {name}: new value {got:#018x}");
}

#[test]
fn golden_pingpong() {
    let got = fp(|b| {
        b.spawn(0, programs::pingpong("g", 100, true));
        b.spawn(1, programs::pingpong("g", 100, false));
    });
    let crashed = fp(|b| {
        b.spawn(0, programs::pingpong("g", 100, true));
        b.spawn(1, programs::pingpong("g", 100, false));
        b.crash_at(VTime(8_000), 0);
    });
    assert_eq!(got, crashed, "crash transparency is part of the golden contract");
    check("pingpong", got, golden::PINGPONG);
}

#[test]
fn golden_bank() {
    let got = fp(|b| {
        b.spawn(0, programs::bank_server("g", 64));
        b.spawn(1, programs::bank_client("g", 64, 16, 9));
    });
    check("bank", got, golden::BANK);
}

#[test]
fn golden_files_and_terminal() {
    let got = fp(|b| {
        b.terminals(1);
        b.spawn(0, programs::file_writer("/g", 6, 256));
        b.spawn(1, programs::tty_session("tty:0", 1));
        b.type_at(VTime(40_000), 0, b"golden\n");
    });
    check("files+tty", got, golden::FILES_TTY);
}

/// The pinned values. Regenerate by running with `--nocapture` after a
/// deliberate semantic change and copying the printed values.
mod golden {
    pub const PINGPONG: u64 = 0x9e657baf4eb04ef8;
    pub const BANK: u64 = 0xfd23a4dfb9447524;
    pub const FILES_TTY: u64 = 0x4c87ecd8b8e5dc58;
}
