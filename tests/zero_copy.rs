//! Zero-copy fabric regression tests.
//!
//! The paper's bus delivers one transmission to three destinations
//! (§7.4.2); the simulation mirrors that with [`auros::bus::SharedBytes`]
//! payloads, so fanning a frame out to the destination, the destination's
//! backup, and the sender's backup shares a single payload buffer. These
//! tests pin that property with the allocation probe, and pin the bus
//! byte accounting so the representation change can never silently alter
//! wire sizes.

use auros::bus::payload_allocs;
use auros::{programs, SystemBuilder, VTime};

const DEADLINE: VTime = VTime(400_000_000);

const MSGS: u64 = 40;
const SIZE: u64 = 4096;

fn bulk_run(fault_tolerant: bool) -> auros::System {
    let mut b = SystemBuilder::new(3);
    if !fault_tolerant {
        b.without_fault_tolerance();
    }
    b.spawn(0, programs::bulk_producer("z", MSGS, SIZE));
    b.spawn(1, programs::bulk_consumer("z", MSGS, SIZE));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE), "bulk workload must complete");
    sys
}

/// One frame to three clusters costs exactly one payload allocation.
///
/// The probe counts fresh payload buffers (clones and slices are free),
/// so a fault-tolerant run — every data message delivered to its
/// destination, the destination's backup, and the sender's backup — must
/// allocate exactly once per message sent: at the sending kernel's
/// copy-in from guest memory. A run without fault tolerance (single
/// delivery target) must allocate exactly the same amount; the whole
/// cost of the two extra destinations is reference-count traffic.
///
/// Single test function: the probe is process-global, and the test
/// harness runs tests in one binary concurrently.
#[test]
fn triple_delivery_costs_one_allocation_per_message() {
    let before = payload_allocs();
    let ft = bulk_run(true);
    let ft_allocs = payload_allocs() - before;

    let before = payload_allocs();
    let solo = bulk_run(false);
    let solo_allocs = payload_allocs() - before;

    assert_eq!(ft_allocs, MSGS, "one allocation per message sent, regardless of fan-out");
    assert_eq!(solo_allocs, ft_allocs, "fan-out must not allocate payload buffers");

    // Sanity: the fault-tolerant run really did deliver each message to
    // more destinations than the unprotected run.
    let deliveries =
        |s: &auros::System| s.world.stats.clusters.iter().map(|c| c.deliveries).sum::<u64>();
    assert!(
        deliveries(&ft) > deliveries(&solo),
        "fault-tolerant run must fan out to extra destinations ({} vs {})",
        deliveries(&ft),
        deliveries(&solo)
    );
}

/// Bus byte accounting is pinned: switching the payload representation
/// from `Vec<u8>` to `SharedBytes` must not move a single wire byte.
/// (The golden fingerprints in `tests/golden.rs` cover serialization
/// semantics; this pins the byte *accounting* explicitly.)
#[test]
fn bus_byte_accounting_is_unchanged() {
    let sys = bulk_run(true);
    let s = &sys.world.stats;
    assert_eq!(
        (s.bus_frames, s.bus_bytes),
        golden::BULK_FRAMES_BYTES,
        "bus accounting changed: new value ({}, {})",
        s.bus_frames,
        s.bus_bytes
    );
}

mod golden {
    /// `(bus_frames, bus_bytes)` for the fault-tolerant bulk workload,
    /// captured with the pre-zero-copy `Vec<u8>` payload representation.
    pub const BULK_FRAMES_BYTES: (u64, u64) = (71, 173402);
}
