//! The seeded chaos sweep and the fault-plan DSL's validation.
//!
//! The sweep samples ≥100 random fault plans — cluster crashes, bus
//! failures, disk-mirror failures, sequenced double faults, and
//! transient wire faults (drops, corruptions, duplications, delays,
//! flaky-bus windows) — and holds each to the survivability oracle:
//! plans inside the paper's fault model must be externally
//! indistinguishable from the fault-free twin and leave the survivors
//! structurally sound; plans outside it must be *reported*
//! unsurvivable, never silently corrupt.

use auros::chaos::{run_sweep, ChaosConfig, PlanKind};
use auros::fault::FaultPlanError;
use auros::{programs, SystemBuilder, VTime};

// ---------------------------------------------------------------------
// The sweep itself
// ---------------------------------------------------------------------

#[test]
fn chaos_sweep_of_120_seeded_plans_upholds_the_oracle() {
    let report = run_sweep(&ChaosConfig { seed: 0xA42_0001, plans: 120, ..ChaosConfig::default() });
    assert!(report.failures.is_empty(), "oracle failures:\n{}", report.summary());
    // The sampler must actually exercise every fault shape: the
    // coverage gate fails loudly on a never-sampled kind.
    for kind in PlanKind::ALL {
        assert!(report.count_of(kind) > 0, "kind {kind:?} never sampled:\n{}", report.summary());
    }
    assert!(report.unsampled().is_empty(), "unsampled kinds: {:?}", report.unsampled());
    // Survivable plans dominate the distribution (10 of 14 shapes
    // survivable by construction, plus uncascaded CascadeFailover draws).
    assert!(report.survived() >= report.outcomes.len() / 2, "{}", report.summary());
    // Every crash-loop plan ended with its poison in the dead-letter
    // ledger (no give-up is reachable under the default budgets).
    for o in report.outcomes.iter().filter(|o| o.kind == PlanKind::CrashLoop) {
        assert!(o.injected_poisons > 0, "plan {} injected nothing", o.index);
        assert_eq!(
            o.quarantined_poisons,
            o.injected_poisons,
            "plan {} left a poison unquarantined:\n{}",
            o.index,
            report.summary()
        );
        assert!(o.supervised_restarts > 0, "plan {} never restarted its victim", o.index);
    }
    // Crash-bearing plans must have recorded a recovery latency.
    let crash_latencies = report
        .outcomes
        .iter()
        .filter(|o| o.survived && o.kind == PlanKind::SingleCrash)
        .filter(|o| o.recovery_latency.is_some())
        .count();
    assert!(crash_latencies > 0, "no recovery latency recorded:\n{}", report.summary());
}

/// The CI smoke subset: a small fixed-seed sweep chosen so the sampled
/// shapes include transient wire-fault plans. Fast enough for a
/// per-push gate; the full 120-plan sweep stays in the main suite.
#[test]
fn chaos_smoke() {
    let report = run_sweep(&ChaosConfig { seed: 0xA42_0002, plans: 24, ..ChaosConfig::default() });
    assert!(report.failures.is_empty(), "oracle failures:\n{}", report.summary());
    let transients =
        report.count_of(PlanKind::TransientMix) + report.count_of(PlanKind::FlakyBusWindow);
    assert!(transients > 0, "smoke seed sampled no transient plans:\n{}", report.summary());
}

/// The CI campaign smoke: a seeded slice of the correlated-campaign
/// sweep whose draws include at least one CrashLoop and one ZoneOutage
/// plan, holding the supervision invariants (poison quarantine,
/// budgeted give-up, reported zone loss) to the oracle.
#[test]
fn campaign_smoke() {
    let report = run_sweep(&ChaosConfig { seed: 0xA42_0003, plans: 24, ..ChaosConfig::default() });
    assert!(report.failures.is_empty(), "oracle failures:\n{}", report.summary());
    assert!(
        report.count_of(PlanKind::CrashLoop) > 0,
        "campaign seed sampled no CrashLoop plan:\n{}",
        report.summary()
    );
    assert!(
        report.count_of(PlanKind::ZoneOutage) > 0,
        "campaign seed sampled no ZoneOutage plan:\n{}",
        report.summary()
    );
    // Zone outages exceed the fault model and must be *reported*.
    for o in report.outcomes.iter().filter(|o| o.kind == PlanKind::ZoneOutage) {
        assert!(!o.expect_survivable, "plan {} expected survivable", o.index);
    }
}

#[test]
fn chaos_sweep_is_reproducible_from_its_seed() {
    let cfg = ChaosConfig { seed: 77, plans: 6, ..ChaosConfig::default() };
    let a = run_sweep(&cfg);
    let b = run_sweep(&cfg);
    let shape = |r: &auros::chaos::ChaosReport| -> Vec<_> {
        r.outcomes.iter().map(|o| (o.kind, o.events.clone(), o.survived)).collect()
    };
    assert_eq!(shape(&a), shape(&b));
}

// ---------------------------------------------------------------------
// Fault-plan validation at the builder
// ---------------------------------------------------------------------

fn plain_builder() -> SystemBuilder {
    let mut b = SystemBuilder::new(3);
    b.spawn(0, programs::compute_loop(50, 2));
    b
}

#[test]
fn crash_of_missing_cluster_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.crash_at(VTime(5_000), 7);
    assert_eq!(
        b.try_build().err(),
        Some(FaultPlanError::ClusterOutOfRange { cluster: 7, clusters: 3 })
    );
}

#[test]
fn duplicate_crash_without_restore_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.crash_at(VTime(5_000), 1).crash_at(VTime(9_000), 1);
    assert_eq!(
        b.try_build().err(),
        Some(FaultPlanError::DuplicateCrash { cluster: 1, at: VTime(9_000) })
    );
}

#[test]
fn crash_restore_crash_of_same_cluster_is_valid() {
    let mut b = plain_builder();
    b.crash_at(VTime(5_000), 1).restore_at(VTime(20_000), 1).crash_at(VTime(40_000), 1);
    assert!(b.try_build().is_ok());
}

#[test]
fn restore_of_live_cluster_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.restore_at(VTime(5_000), 2);
    assert_eq!(
        b.try_build().err(),
        Some(FaultPlanError::RestoreOfLiveCluster { cluster: 2, at: VTime(5_000) })
    );
}

#[test]
fn fault_at_time_zero_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.bus_fail_at(VTime(0));
    assert_eq!(b.try_build().err(), Some(FaultPlanError::AtTimeZero));
}

#[test]
fn disk_fault_on_missing_pair_is_a_clean_builder_error() {
    // No raw disks: only disk 0 (the file-system pair) exists.
    let mut b = plain_builder();
    b.disk_half_fail_at(VTime(5_000), 1);
    assert_eq!(b.try_build().err(), Some(FaultPlanError::DiskOutOfRange { disk: 1, disks: 1 }));
    // With a raw disk, the same plan is fine.
    let mut b = plain_builder();
    b.raw_disks(1);
    b.disk_half_fail_at(VTime(5_000), 1);
    assert!(b.try_build().is_ok());
}

#[test]
fn partial_failure_of_missing_spawn_is_a_clean_builder_error() {
    // The builder spawns exactly one process; index 1 names nobody.
    let mut b = plain_builder();
    b.fail_process_at(VTime(5_000), 1);
    assert_eq!(b.try_build().err(), Some(FaultPlanError::SpawnOutOfRange { spawn: 1, spawns: 1 }));
}

#[test]
fn empty_flaky_window_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.flaky_bus(VTime(9_000), VTime(5_000), auros::bus::BusKind::A);
    assert_eq!(
        b.try_build().err(),
        Some(FaultPlanError::EmptyFlakyWindow { from: VTime(9_000), until: VTime(5_000) })
    );
}

#[test]
fn transient_aimed_past_both_bus_failures_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.bus_fail_at(VTime(5_000)).bus_fail_at(VTime(6_000)).drop_frame_at(VTime(8_000));
    assert_eq!(b.try_build().err(), Some(FaultPlanError::TransientOnDeadBus { at: VTime(8_000) }));
    // Ahead of the second failure the drop still has a wire to strike.
    let mut b = plain_builder();
    b.bus_fail_at(VTime(5_000)).bus_fail_at(VTime(9_000)).drop_frame_at(VTime(7_000));
    assert!(b.try_build().is_ok());
}

#[test]
fn tiny_sweep_reports_its_unsampled_kinds() {
    // Two draws cannot cover fourteen shapes: the coverage gate must
    // name the shapes that escaped, not return an empty list.
    let report = run_sweep(&ChaosConfig { seed: 1, plans: 2, ..ChaosConfig::default() });
    assert!(!report.unsampled().is_empty(), "two plans cannot cover {:?}", PlanKind::ALL);
}

#[test]
fn poison_of_missing_spawn_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.poison_at(VTime(5_000), 1);
    assert_eq!(b.try_build().err(), Some(FaultPlanError::SpawnOutOfRange { spawn: 1, spawns: 1 }));
}

#[test]
fn double_poison_of_one_spawn_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.poison_at(VTime(5_000), 0).poison_at(VTime(9_000), 0);
    assert_eq!(b.try_build().err(), Some(FaultPlanError::DuplicatePoison { spawn: 0 }));
}

#[test]
fn zone_outage_of_missing_zone_is_a_clean_builder_error() {
    // Three clusters form one complete zone ({0, 1}); zone 1 would need
    // cluster 3.
    let mut b = plain_builder();
    b.zone_outage_at(VTime(5_000), 1);
    assert_eq!(b.try_build().err(), Some(FaultPlanError::ZoneOutOfRange { zone: 1, zones: 1 }));
}

#[test]
fn zone_outage_overlapping_a_crash_is_a_clean_builder_error() {
    let mut b = plain_builder();
    b.crash_at(VTime(4_000), 1).zone_outage_at(VTime(8_000), 0);
    assert_eq!(
        b.try_build().err(),
        Some(FaultPlanError::DuplicateCrash { cluster: 1, at: VTime(8_000) })
    );
}

#[test]
#[should_panic(expected = "invalid fault plan")]
fn build_panics_with_the_validation_message() {
    let mut b = plain_builder();
    b.crash_at(VTime(5_000), 9);
    let _ = b.build();
}

#[test]
fn validation_considers_time_order_not_call_order() {
    // Calls arrive out of chronological order; the plan is still sound.
    let mut b = plain_builder();
    b.crash_at(VTime(40_000), 1).restore_at(VTime(20_000), 1).crash_at(VTime(5_000), 1);
    assert!(b.try_build().is_ok());
}
