//! Crash-handling and recovery tests (§6, §7.10): a single cluster
//! failure must be transparent — every externally visible outcome equals
//! the fault-free run's.

use auros::sim::{TraceKind, TraceLog};
use auros::{programs, BackupMode, RunDigest, SystemBuilder, VTime};

const DEADLINE: VTime = VTime(400_000_000);

/// Builds, optionally crashes cluster `victim` at `at`, runs, digests.
///
/// Promotion and suppression counts come from the flight recorder's
/// typed events, cross-checked against the stats ledgers — a promotion
/// the ledger counts but the recorder never saw (or vice versa) is a
/// bug in its own right.
fn pingpong_run(crash: Option<(u64, u16)>, rounds: u64) -> (RunDigest, u64, u64) {
    let mut b = SystemBuilder::new(3);
    b.spawn(0, programs::pingpong("pp", rounds, true));
    b.spawn(1, programs::pingpong("pp", rounds, false));
    if let Some((at, victim)) = crash {
        b.crash_at(VTime(at), victim);
    }
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    assert!(sys.run(DEADLINE), "workload survives");
    let promotions =
        sys.world.trace.count_where(|k| matches!(*k, TraceKind::PromotingBackup { .. })) as u64;
    let suppressed =
        sys.world.trace.count_where(|k| matches!(*k, TraceKind::SendSuppressed { .. })) as u64;
    let ledger_promotions: u64 = sys.world.stats.clusters.iter().map(|c| c.promotions).sum();
    assert_eq!(promotions, ledger_promotions, "recorder and ledger disagree on promotions");
    assert_eq!(
        suppressed,
        sys.world.stats.total_suppressed(),
        "recorder and ledger disagree on suppressed sends"
    );
    (sys.digest(), promotions, suppressed)
}

#[test]
fn crash_of_initiator_cluster_is_transparent() {
    let (clean, _, _) = pingpong_run(None, 120);
    for at in [3_000, 9_000, 15_000, 24_000] {
        let (crashed, promotions, _) = pingpong_run(Some((at, 0)), 120);
        assert!(promotions > 0, "crash at {at} must promote backups");
        assert_eq!(clean, crashed, "digest mismatch for crash at {at}");
    }
}

#[test]
fn crash_of_responder_cluster_is_transparent() {
    let (clean, _, _) = pingpong_run(None, 120);
    for at in [4_000, 8_000, 13_000] {
        let (crashed, promotions, _) = pingpong_run(Some((at, 1)), 120);
        assert!(promotions > 0, "crash at {at} must promote backups");
        assert_eq!(clean, crashed, "digest mismatch for crash at {at}");
    }
}

#[test]
fn crash_of_bystander_cluster_is_harmless() {
    let (clean, _, _) = pingpong_run(None, 60);
    // Cluster 2 hosts the process server; its crash must also be
    // transparent (system servers are backed up too, §7.6).
    let (crashed, _, _) = pingpong_run(Some((8_000, 2)), 60);
    assert_eq!(clean, crashed);
}

#[test]
fn duplicate_sends_are_suppressed_not_resent() {
    // Crash long enough after a sync that the primary sent messages the
    // backup will re-execute: the suppression counter must fire and the
    // digest must still match (§5.4).
    let (clean, _, _) = pingpong_run(None, 200);
    let mut saw_suppression = false;
    for at in [6_000, 10_000, 14_000, 18_000, 22_000] {
        let (crashed, _, suppressed) = pingpong_run(Some((at, 0)), 200);
        assert_eq!(clean, crashed, "crash at {at}");
        saw_suppression |= suppressed > 0;
    }
    assert!(saw_suppression, "at least one crash point must exercise suppression");
}

#[test]
fn bank_workload_survives_server_side_crash() {
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.spawn(0, programs::bank_server("bank", 128));
        b.spawn(1, programs::bank_client("bank", 128, 16, 99));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.digest()
    };
    let clean = run(None);
    for at in [5_000, 12_000, 25_000, 40_000] {
        assert_eq!(clean, run(Some(at)), "bank crash at {at}");
    }
}

#[test]
fn file_workload_survives_fileserver_crash() {
    // The file server's primary lives in cluster 0; crashing it mid-write
    // exercises the shadow-block recovery (§7.9).
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.spawn(2, programs::file_writer("/wal", 12, 256));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "writer survives fs crash");
        sys.digest()
    };
    let clean = run(None);
    for at in [4_000, 9_000, 16_000, 30_000] {
        assert_eq!(clean, run(Some(at)), "fs crash at {at}");
    }
}

#[test]
fn pipeline_survives_middle_stage_crash() {
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.spawn(0, programs::producer("p1", 60));
        b.spawn(1, programs::pipeline_stage("p1", "p2", 60));
        b.spawn(2, programs::consumer("p2", 60));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 1);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.digest()
    };
    let clean = run(None);
    for at in [6_000, 14_000, 28_000] {
        assert_eq!(clean, run(Some(at)), "pipeline crash at {at}");
    }
}

#[test]
fn forked_children_survive_crash_of_their_cluster() {
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        // A slow forker: children compute long enough to straddle the
        // crash.
        b.spawn(0, programs::forker(3, 20_000));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "family survives");
        sys.digest()
    };
    let clean = run(None);
    for at in [4_000, 10_000, 20_000] {
        assert_eq!(clean, run(Some(at)), "fork crash at {at}");
    }
}

#[test]
fn fullback_reprotects_and_survives_second_crash() {
    let run = |crashes: &[(u64, u16)]| {
        let mut b = SystemBuilder::new(4);
        b.spawn_with_mode(0, programs::pingpong("pp", 150, true), BackupMode::Fullback);
        b.spawn_with_mode(1, programs::pingpong("pp", 150, false), BackupMode::Fullback);
        for (at, victim) in crashes {
            b.crash_at(VTime(*at), *victim);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "fullbacks survive {crashes:?}");
        sys.digest()
    };
    let clean = run(&[]);
    // First crash kills cluster 0 (initiator + servers). The fullback is
    // re-protected at a new cluster; a second, later crash of that
    // cluster must also be survivable.
    assert_eq!(clean, run(&[(8_000, 0)]));
    assert_eq!(clean, run(&[(8_000, 0), (60_000, 1)]));
}

#[test]
fn halfback_gets_new_backup_when_cluster_returns() {
    let run = |plan: &[(u64, u16, bool)]| {
        // plan: (time, cluster, is_restore)
        let mut b = SystemBuilder::new(3);
        b.spawn_with_mode(0, programs::pingpong("pp", 200, true), BackupMode::Halfback);
        b.spawn_with_mode(1, programs::pingpong("pp", 200, false), BackupMode::Halfback);
        for (at, cluster, restore) in plan {
            if *restore {
                b.restore_at(VTime(*at), *cluster);
            } else {
                b.crash_at(VTime(*at), *cluster);
            }
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.digest()
    };
    let clean = run(&[]);
    let crashed = run(&[(8_000, 0, false)]);
    let restored = run(&[(8_000, 0, false), (30_000, 0, true)]);
    assert_eq!(clean, crashed);
    assert_eq!(clean, restored);
}

#[test]
fn restore_reprotects_halfbacks_for_a_second_crash() {
    // crash c0 → restore c0 → crash c1. Only survivable because the
    // halfbacks got new backups at the restored cluster (§7.3).
    let mut b = SystemBuilder::new(3);
    b.spawn_with_mode(0, programs::pingpong("pp", 400, true), BackupMode::Halfback);
    b.spawn_with_mode(1, programs::pingpong("pp", 400, false), BackupMode::Halfback);
    b.crash_at(VTime(8_000), 0);
    b.restore_at(VTime(40_000), 0);
    b.crash_at(VTime(90_000), 1);
    let mut sys = b.build();
    assert!(sys.run(DEADLINE), "double crash with restoration in between");

    let mut clean_b = SystemBuilder::new(3);
    clean_b.spawn_with_mode(0, programs::pingpong("pp", 400, true), BackupMode::Halfback);
    clean_b.spawn_with_mode(1, programs::pingpong("pp", 400, false), BackupMode::Halfback);
    let mut clean = clean_b.build();
    assert!(clean.run(DEADLINE));
    assert_eq!(clean.digest(), sys.digest());
}

#[test]
fn terminal_session_survives_tty_cluster_crash() {
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.terminals(1); // tty server in cluster 0, backup in 1
        b.spawn(2, programs::tty_session("tty:0", 3));
        b.type_at(VTime(30_000), 0, b"one\n");
        b.type_at(VTime(80_000), 0, b"two\n");
        b.type_at(VTime(130_000), 0, b"three\n");
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "session survives");
        sys.digest()
    };
    let clean = run(None);
    for at in [50_000, 100_000] {
        assert_eq!(clean, run(Some(at)), "tty crash at {at}");
    }
}

#[test]
fn alarm_survives_procserver_crash() {
    // The alarm lives in the process server's state; crashing its
    // cluster mid-countdown must still deliver the signal (§7.5.2).
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        // Process server lives in cluster 2 (last).
        b.spawn(0, programs::alarm_waiter(60_000));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 2);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "alarm still fires");
        sys.exit_of(0)
    };
    assert_eq!(run(None), Some(1));
    assert_eq!(run(Some(20_000)), Some(1));
}

#[test]
fn unprotected_quarterback_dies_with_second_crash_of_its_host() {
    // After its first promotion a quarterback runs unprotected (§7.3):
    // a second crash of its new host kills it for good. This is the
    // *expected* behaviour, not a failure of the system.
    let mut b = SystemBuilder::new(3);
    b.spawn_with_mode(0, programs::pingpong("pp", 4000, true), BackupMode::Quarterback);
    b.spawn_with_mode(2, programs::pingpong("pp", 4000, false), BackupMode::Quarterback);
    b.crash_at(VTime(8_000), 0); // promote initiator onto cluster 1
    b.crash_at(VTime(30_000), 1); // kill the promoted, unprotected copy
    let mut sys = b.build();
    let done = sys.run(VTime(2_000_000));
    assert!(!done, "the workload cannot complete");
    assert!(sys.exit_of(0).is_none(), "the initiator died unprotected");
}

#[test]
fn crash_handling_pauses_then_resumes_unaffected_work() {
    // §8.4: processes unaffected by the crash resume before everything
    // is rebuilt; here we just assert they complete and that crash
    // handling consumed work-processor time on survivors.
    let mut b = SystemBuilder::new(3);
    b.spawn(1, programs::compute_loop(2_000, 4));
    b.crash_at(VTime(10_000), 2);
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    assert!(sys.run(DEADLINE));
    let crash_busy: u64 = sys.world.stats.clusters.iter().map(|c| c.crash_busy.as_ticks()).sum();
    assert!(crash_busy > 0, "survivors ran crash-handling processes");
    // The typed event stream shows the §7.10.1 shape: detection of the
    // right victim, handling on the survivors, and dispatches of the
    // unaffected process *after* handling completed (resumption).
    let events = sys.world.trace.snapshot();
    let detected = events
        .iter()
        .position(|e| matches!(e.kind, TraceKind::CrashDetected { dead: 2 }))
        .expect("crash of c2 detected");
    let begun = events
        .iter()
        .position(|e| matches!(e.kind, TraceKind::CrashHandlingBegin { dead: 2, .. }))
        .expect("crash handling began");
    let done = events
        .iter()
        .rposition(|e| matches!(e.kind, TraceKind::CrashHandlingDone { dead: 2 }))
        .expect("crash handling completed");
    assert!(detected <= begun && begun < done, "detect -> begin -> done, in order");
    assert!(
        events[done..].iter().any(|e| matches!(e.kind, TraceKind::Dispatched { .. })),
        "unaffected work resumed after crash handling"
    );
}

#[test]
fn recovery_is_transparent_under_memory_pressure() {
    // Eviction + demand paging + crash: the §7.6 paging path and the
    // §7.10.2 rollforward must compose.
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.config_mut().resident_page_limit = Some(4);
        b.config_mut().sync_max_fuel = 4_000;
        b.spawn(0, programs::compute_loop(60, 10));
        b.spawn(1, programs::bank_server("mp", 32));
        b.spawn(2, programs::bank_client("mp", 32, 8, 3));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "paging workload survives");
        sys.digest()
    };
    let clean = run(None);
    for at in [10_000, 25_000, 50_000] {
        assert_eq!(clean, run(Some(at)), "crash at {at} under paging");
    }
}

#[test]
fn partial_failure_promotes_only_the_victim() {
    // §10 extension: the cluster survives; a colocated process keeps
    // running in place while the victim's backup takes over elsewhere.
    let run = |fail: bool| {
        let mut b = SystemBuilder::new(3);
        let victim = b.spawn(0, programs::pingpong("pf", 150, true));
        let _peer = b.spawn(1, programs::pingpong("pf", 150, false));
        let bystander = b.spawn(0, programs::compute_loop(200, 3));
        if fail {
            b.fail_process_at(VTime(10_000), victim);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "all processes finish");
        assert!(sys.world.clusters.iter().all(|c| c.alive), "no cluster went down");
        let _ = bystander;
        sys.digest()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn partial_failure_digest_matches_across_offsets() {
    let run = |fail_at: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        let s = b.spawn(0, programs::bank_server("pfb", 96));
        b.spawn(1, programs::bank_client("pfb", 96, 8, 11));
        if let Some(at) = fail_at {
            b.fail_process_at(VTime(at), s);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.digest()
    };
    let clean = run(None);
    for at in [5_000, 15_000, 30_000] {
        assert_eq!(clean, run(Some(at)), "partial failure at {at}");
    }
}

#[test]
fn fullback_partial_failure_reprotects() {
    let mut b = SystemBuilder::new(4);
    let v = b.spawn_with_mode(0, programs::pingpong("pff", 300, true), BackupMode::Fullback);
    b.spawn_with_mode(1, programs::pingpong("pff", 300, false), BackupMode::Fullback);
    // Fail the initiator twice: first in cluster 0, then (after
    // promotion to cluster 1 and re-protection) again.
    b.fail_process_at(VTime(8_000), v);
    b.fail_process_at(VTime(40_000), v);
    let mut sys = b.build();
    assert!(sys.run(DEADLINE), "two partial failures of the same fullback");
    assert!(sys.exit_of(v).is_some());
}

#[test]
fn nondeterministic_events_stay_consistent_across_crashes() {
    // §10 extension: Sys::Rand results are piggybacked on outgoing
    // messages. After ANY crash, sender and receiver must still agree on
    // the values (escaped ones replay; un-escaped ones are re-decided,
    // which is invisible because nobody saw them).
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        let s = b.spawn(0, programs::rand_streamer("nd", 120));
        let c = b.spawn(1, programs::consumer("nd", 120));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "nondet stream survives");
        (sys.exit_of(s), sys.exit_of(c))
    };
    let (clean_s, clean_c) = run(None);
    assert_eq!(clean_s, clean_c, "fault-free: sums agree");
    for at in [5_000, 12_000, 25_000, 50_000] {
        let (s, c) = run(Some(at));
        assert_eq!(s, c, "crash at {at}: sender and receiver must agree");
    }
}

#[test]
fn escaped_nondet_values_replay_identically() {
    // Force frequent syncs so most values escape before the crash; then
    // the crashed run's stream equals the fault-free run's bit-for-bit
    // (every consumed value was logged at the sender's backup).
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.config_mut().sync_max_reads = 4;
        let s = b.spawn(0, programs::rand_streamer("ndr", 60));
        let c = b.spawn(1, programs::consumer("ndr", 60));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        let _ = s;
        sys.exit_of(c)
    };
    // Determinism of the fault-free run itself.
    assert_eq!(run(None), run(None));
    // Sender/receiver agreement is asserted by the previous test; here
    // just confirm the crashed run is reproducible too.
    assert_eq!(run(Some(15_000)), run(Some(15_000)));
}

#[test]
fn sync_of_process_blocked_in_open_survives_crash() {
    // The child blocks in `open` (its request escaped); the parent's
    // fuel-triggered sync forces the child's first sync, which must
    // record the pending call. A crash then promotes the child mid-open;
    // the late rendezvous partner finally arrives and the promoted child
    // completes the call from its saved queue — without re-sending the
    // open request (§5.4 + §7.8 pending-call machinery).
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.config_mut().sync_max_fuel = 8_000;
        let fam = b.spawn(0, programs::fork_blocked_opener("late-rv", 40_000));
        b.spawn(1, programs::delayed_producer("late-rv", 120_000));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "family + late producer complete");
        let parent_pid = sys.pids[fam];
        let child = auros::bus::proto::derive_child_pid(parent_pid, 0);
        (sys.exit_of(fam), sys.world.exit_status(child))
    };
    let clean = run(None);
    assert_eq!(clean, (Some(7), Some(9991)));
    // Crash after the parent's sync (~>10k) but before the producer
    // opens (~<120k ticks of compute ≈ 120k+ virtual ticks).
    for at in [30_000, 60_000, 90_000] {
        assert_eq!(run(Some(at)), clean, "crash at {at} while child blocked in open");
    }
}

#[test]
fn sync_of_process_blocked_in_read_survives_crash() {
    // Same shape, but the child blocks in `read` — the rewound-trap
    // family: the snapshot's pc sits on the read trap and the call
    // simply re-executes after promotion.
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.config_mut().sync_max_fuel = 8_000;
        let c = b.spawn(0, programs::consumer("slow-stream", 3));
        b.spawn(1, programs::delayed_producer("slow-stream", 150_000));
        // The producer sends one value; give the consumer just one to
        // read by... the consumer wants 3; feed the rest from a second
        // producer after recovery.
        b.spawn(2, programs::producer("aux", 1));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        // The consumer cannot finish (only 1 of 3 values arrive): run to
        // a fixed horizon and compare in-flight state by digest.
        sys.run(VTime(600_000));
        let _ = c;
        sys.digest()
    };
    let clean = run(None);
    for at in [40_000, 100_000] {
        assert_eq!(run(Some(at)), clean, "crash at {at} while consumer blocked in read");
    }
}

#[test]
fn which_replays_cross_channel_arrival_order() {
    // §7.5.1: messages get arrival sequence numbers so `which` can be
    // replicated by the backup. The selector's checksum is order-
    // sensitive (checksum = 2*checksum + value + fd), so any divergence
    // in the replayed cross-channel order shows up immediately.
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.config_mut().sync_max_reads = 16;
        let sel = b.spawn(0, programs::selector("wx", "wy", 80));
        b.spawn(1, programs::producer("wx", 40));
        b.spawn(2, programs::producer("wy", 40));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "selector finishes");
        sys.exit_of(sel)
    };
    let clean = run(None);
    assert!(clean.is_some());
    for at in [5_000, 9_000, 14_000, 20_000] {
        assert_eq!(run(Some(at)), clean, "which-order diverged for crash at {at}");
    }
}

#[test]
fn sequential_failures_with_restores_soak() {
    // A long OLTP workload rides out an alternating sequence of cluster
    // crashes and restorations — each failure single at a time, per the
    // §3.1 fault model, with halfback re-protection in between.
    let run = |faults: bool| {
        let mut b = SystemBuilder::new(3);
        b.default_mode(BackupMode::Halfback);
        b.spawn(0, programs::bank_server_multi("soak", 2, 600));
        b.spawn(1, programs::bank_client_at("soak0", 300, 16, 0, 21));
        b.spawn(2, programs::bank_client_at("soak1", 300, 16, 16, 22));
        if faults {
            b.crash_at(VTime(15_000), 0);
            b.restore_at(VTime(60_000), 0);
            b.crash_at(VTime(110_000), 1);
            b.restore_at(VTime(160_000), 1);
            b.crash_at(VTime(210_000), 2);
            b.restore_at(VTime(260_000), 2);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "soak workload completes (faults={faults})");
        sys.digest()
    };
    assert_eq!(run(false), run(true), "three crash/restore cycles, zero visible effect");
}

#[test]
fn held_frames_are_not_double_delivered_after_promotion() {
    // Regression test: a frame held on a survivor's outgoing queue
    // during crash handling has its primary target redirected to the
    // promoted cluster; its stale DestBackup target for the same end
    // must be dropped, or the promotion fallback delivers the message
    // twice. Caught originally by a bank client colocated with the
    // server's backup sending exactly during the crash window.
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(4);
        b.spawn(0, programs::bank_server_multi("hd", 3, 360));
        b.spawn(1, programs::bank_client_at("hd0", 120, 32, 0, 1));
        b.spawn(2, programs::bank_client_at("hd1", 120, 32, 32, 2));
        b.spawn(3, programs::bank_client_at("hd2", 120, 32, 64, 3));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.digest()
    };
    let clean = run(None);
    // Sweep densely across the sync window where the original bug bit.
    for at in (42_000..50_000).step_by(1_000) {
        assert_eq!(clean, run(Some(at)), "double delivery at crash offset {at}");
    }
}

#[test]
fn grandchildren_survive_family_cluster_crash() {
    // §7.7: "All members of a family must have their backups in a single
    // cluster." A crash of the family's home replays parent, child, and
    // grandchild — including the child's own replayed fork.
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.config_mut().sync_max_fuel = 6_000;
        let fam = b.spawn(0, programs::nested_forker(25_000));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "family completes (crash={crash:?})");
        let parent = sys.pids[fam];
        let child = auros::bus::proto::derive_child_pid(parent, 0);
        let grandchild = auros::bus::proto::derive_child_pid(child, 0);
        (sys.exit_of(fam), sys.world.exit_status(child), sys.world.exit_status(grandchild))
    };
    let clean = run(None);
    assert_eq!(clean, (Some(1), Some(2), Some(3)));
    for at in [4_000, 10_000, 18_000, 30_000] {
        assert_eq!(clean, run(Some(at)), "family crash at {at}");
    }
}

#[test]
fn client_latency_spike_during_recovery_is_bounded() {
    // §3.3: the delay a correspondent observes during its peer's
    // recovery is one bounded spike, not a lasting slowdown.
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.spawn(0, programs::bank_server("lat", 200));
        let client = b.spawn(1, programs::bank_client("lat", 200, 16, 3));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.wait_stats(client)
    };
    let (total_c, waits_c, max_clean) = run(None);
    let (total_x, waits_x, max_crash) = run(Some(10_000));
    assert_eq!(waits_c, waits_x, "same number of round trips");
    assert!(
        max_crash > max_clean,
        "the recovery wait is the longest single wait: {max_crash} vs {max_clean}"
    );
    // The spike is bounded by detection + crash handling + replay —
    // well under 20k ticks at default settings.
    assert!(max_crash < 20_000, "recovery delay too long: {max_crash}");
    // Amortized over the run, the slowdown stays small.
    let avg_c = total_c / waits_c.max(1);
    let avg_x = total_x / waits_x.max(1);
    assert!(avg_x < avg_c * 2, "average latency must not blow up: {avg_x} vs {avg_c}");
}

#[test]
fn fork_under_memory_pressure_faults_pages_first() {
    // `fork` needs the parent's whole address space materialized; with a
    // residency limit the kernel demand-pages the rest in before copying
    // (the rewound-trap path), and the family still survives a crash.
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.config_mut().resident_page_limit = Some(3);
        b.config_mut().sync_max_fuel = 5_000;
        let fam = b.spawn(0, programs::forker(2, 30_000));
        // Warm several pages before forking happens via compute_loop in
        // a sibling to create paging traffic.
        b.spawn(1, programs::compute_loop(50, 8));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "family completes under paging pressure");
        let parent = sys.pids[fam];
        let kids: Vec<_> = (0..2)
            .map(|i| sys.world.exit_status(auros::bus::proto::derive_child_pid(parent, i)))
            .collect();
        (sys.exit_of(fam), kids)
    };
    let clean = run(None);
    assert_eq!(clean.0, Some(2));
    for at in [8_000, 20_000] {
        assert_eq!(clean, run(Some(at)), "fork+eviction crash at {at}");
    }
}

// ---------------------------------------------------------------------
// Dual-bus failover (§7.1)
// ---------------------------------------------------------------------

#[test]
fn bus_failover_mid_frame_is_transparent() {
    // The active bus dies while frames are in flight; the standby takes
    // over and the in-flight frames are retransmitted. No frame may be
    // lost or doubled: the run must be externally indistinguishable
    // from the fault-free twin.
    let run = |fail_at: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.spawn(0, programs::pingpong("bus", 150, true));
        b.spawn(1, programs::pingpong("bus", 150, false));
        if let Some(at) = fail_at {
            b.bus_fail_at(VTime(at));
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "workload survives bus failure at {fail_at:?}");
        let (failovers, retransmitted) =
            (sys.world.stats.bus_failovers, sys.world.stats.frames_retransmitted);
        (sys.digest(), failovers, retransmitted)
    };
    let (clean, failovers, _) = run(None);
    assert_eq!(failovers, 0);
    let mut retransmitted_somewhere = false;
    for at in [2_000, 5_000, 9_000, 14_000, 21_000] {
        let (digest, failovers, retransmitted) = run(Some(at));
        assert_eq!(digest, clean, "bus failure at {at} must be transparent");
        assert_eq!(failovers, 1, "exactly one failover at {at}");
        retransmitted_somewhere |= retransmitted > 0;
    }
    assert!(retransmitted_somewhere, "at least one failure point must catch a frame mid-flight");
}

// ---------------------------------------------------------------------
// Disk mirror failure (§7.9)
// ---------------------------------------------------------------------

#[test]
fn disk_half_failure_is_transparent() {
    // One mirror of the file-system disk pair fails mid-workload; the
    // survivor carries on and every file read back is intact.
    let run = |fail_at: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        b.spawn(0, programs::file_writer("/half", 12, 256));
        if let Some(at) = fail_at {
            b.disk_half_fail_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "workload survives mirror failure at {fail_at:?}");
        let faults = sys.world.stats.disk_half_faults;
        (sys.digest(), faults)
    };
    let (clean, faults) = run(None);
    assert_eq!(faults, 0);
    assert!(!clean.files.is_empty(), "the workload writes files");
    for at in [3_000, 10_000, 20_000] {
        let (digest, faults) = run(Some(at));
        assert_eq!(digest, clean, "mirror failure at {at} must be transparent");
        assert_eq!(faults, 1);
    }
}

// ---------------------------------------------------------------------
// Sequenced double failures (§7.10.2)
// ---------------------------------------------------------------------

#[test]
fn second_crash_of_the_fresh_backup_host_is_survivable() {
    // Crash A promotes the fullback and re-creates its backup at a new
    // cluster X. A later crash of X destroys the *freshly created*
    // backup; §7.10.2 requires the system to re-protect once more and
    // still finish indistinguishably.
    let build = |crashes: &[(u64, u16)]| {
        let mut b = SystemBuilder::new(4);
        b.spawn_with_mode(0, programs::pingpong("pp", 400, true), BackupMode::Fullback);
        b.spawn_with_mode(2, programs::pingpong("pp", 400, false), BackupMode::Fullback);
        for (at, victim) in crashes {
            b.crash_at(VTime(*at), *victim);
        }
        b.build()
    };
    let mut clean = build(&[]);
    assert!(clean.run(DEADLINE));

    // Probe run: find where re-protection placed the initiator's new
    // backup after the first crash (runs are deterministic, so the
    // probe predicts the real run exactly).
    let mut probe = build(&[(8_000, 0)]);
    probe.run_until(VTime(25_000));
    let ping = probe.pids[0];
    let fresh_host = probe
        .world
        .clusters
        .iter()
        .find(|c| c.alive && c.backups.contains_key(&ping))
        .map(|c| c.id.0)
        .expect("the promoted fullback was re-protected");
    assert_ne!(fresh_host, 1, "the new backup cannot sit with the promoted primary");

    let mut sys = build(&[(8_000, 0), (60_000, fresh_host)]);
    assert!(sys.run(DEADLINE), "double crash with re-protection in between");
    assert_eq!(clean.digest(), sys.digest());
    let survival = auros::oracle::check_survival(&sys);
    assert!(survival.ok(), "survivors unsound: {:?}", survival.violations);
    assert_eq!(sys.world.stats.recoveries.len(), 2, "two crash episodes recorded");
}

#[test]
fn rapid_second_crash_before_reprotection_is_reported() {
    // The second crash lands on the fullback's backup host *before*
    // re-protection completes: both copies are gone, which is outside
    // the fault model. The run must report it — the workload never
    // completes — rather than finish with corrupt output.
    let mut b = SystemBuilder::new(4);
    b.spawn_with_mode(0, programs::pingpong("pp", 150, true), BackupMode::Fullback);
    b.spawn_with_mode(2, programs::pingpong("pp", 150, false), BackupMode::Fullback);
    b.crash_at(VTime(8_000), 0); // initiator's primary
    b.crash_at(VTime(8_400), 1); // its backup host, mid-crash-handling
    let mut sys = b.build();
    let done = sys.run(VTime(5_000_000));
    assert!(!done, "the destroyed pair is reported, not papered over");
    assert!(sys.exit_of(0).is_none(), "the initiator never finishes");
}
