//! Figure 1 (the hardware architecture) as checkable structure.

use auros::{topology, SystemBuilder};

#[test]
fn figure_1_structure_holds() {
    let mut b = SystemBuilder::new(4);
    b.terminals(1);
    b.raw_disks(1);
    let sys = b.build();
    let f = topology::facts(&sys);
    // §7.1: 2..=32 clusters, two work processors, a dual bus, and
    // dual-ported peripherals whose server pair spans two clusters.
    assert!((2..=32).contains(&f.clusters));
    assert_eq!(f.work_processors, 2);
    assert!(f.dual_bus);
    assert!(f.devices >= 4, "page store, fs disk, raw disk, terminal");
    for (p, b) in &f.server_pairs {
        assert_ne!(Some(*p), *b, "primary and backup in different clusters");
    }
}

#[test]
fn rendering_is_stable_and_complete() {
    let mut b = SystemBuilder::new(2);
    b.terminals(1);
    let sys = b.build();
    let art = topology::render(&sys);
    assert!(art.contains("intercluster bus A"));
    assert!(art.contains("intercluster bus B"));
    assert!(art.contains("cluster 0"));
    assert!(art.contains("cluster 1"));
    assert!(art.contains("dual-ported"));
}

#[test]
fn crashed_cluster_renders_as_down() {
    use auros::{programs, VTime};
    let mut b = SystemBuilder::new(3);
    b.spawn(1, programs::compute_loop(200, 2));
    b.crash_at(VTime(5_000), 2);
    let mut sys = b.build();
    sys.run(VTime(100_000_000));
    let art = topology::render(&sys);
    assert!(art.contains("DOWN"), "{art}");
}
