//! Cross-crate integration tests: fault-free workloads exercising every
//! part of the public API through the full simulated machine.

use auros::{programs, BackupMode, SystemBuilder, VTime};

const DEADLINE: VTime = VTime(200_000_000);

#[test]
fn compute_only_process_exits_with_checksum() {
    let mut b = SystemBuilder::new(2);
    let i = b.spawn(0, programs::compute_loop(50, 8));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    let status = sys.exit_of(i).expect("finished");
    assert_ne!(status, 0);
}

#[test]
fn pingpong_over_rendezvous_channel() {
    let mut b = SystemBuilder::new(2);
    let ping = b.spawn(0, programs::pingpong("pp", 30, true));
    let pong = b.spawn(1, programs::pingpong("pp", 30, false));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert!(sys.exit_of(ping).is_some());
    assert!(sys.exit_of(pong).is_some());
}

#[test]
fn producer_consumer_stream_sums_match() {
    let mut b = SystemBuilder::new(3);
    let p = b.spawn(0, programs::producer("q", 100));
    let c = b.spawn(2, programs::consumer("q", 100));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(p), sys.exit_of(c), "the consumer's sum equals the producer's checksum");
}

#[test]
fn three_stage_pipeline_transforms_data() {
    let mut b = SystemBuilder::new(3);
    let _src = b.spawn(0, programs::producer("s1", 40));
    let _mid = b.spawn(1, programs::pipeline_stage("s1", "s2", 40));
    let snk = b.spawn(2, programs::consumer("s2", 40));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    // The sink's sum is the transformed stream: sum(3v+7) over inputs.
    let expected: u64 = (0..40u64)
        .map(|i| {
            let v = i.wrapping_mul(2_654_435_761).wrapping_add(17);
            v.wrapping_mul(3).wrapping_add(7)
        })
        .fold(0u64, |a, v| a.wrapping_add(v));
    assert_eq!(sys.exit_of(snk), Some(expected));
}

#[test]
fn bank_transaction_processing_balances() {
    let mut b = SystemBuilder::new(3);
    let server = b.spawn(0, programs::bank_server("bank", 64));
    let client = b.spawn(1, programs::bank_client("bank", 64, 16, 7));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    // The client's checksum over quoted balances equals the server's
    // checksum over produced balances.
    assert_eq!(sys.exit_of(server), sys.exit_of(client));
}

#[test]
fn file_write_then_read_back() {
    let mut b = SystemBuilder::new(2);
    let w = b.spawn(0, programs::file_writer("/data", 6, 256));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(w), Some(6 * 256), "all bytes acknowledged");
    let contents = sys.file_contents("/data").expect("file exists");
    assert_eq!(contents.len(), 6 * 256);
    let sum: u64 = contents
        .chunks(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("aligned")))
        .fold(0u64, |a, v| a.wrapping_add(v));
    let want: u64 = (0..6u64)
        .flat_map(|ch| (0..256u64 / 8).map(move |j| ch.wrapping_mul(1_315_423_911) + j * 8))
        .fold(0u64, |a, v| a.wrapping_add(v));
    assert_eq!(sum, want, "file contents match what the guest generated");
}

#[test]
fn fork_creates_children_with_derived_pids() {
    let mut b = SystemBuilder::new(2);
    let parent = b.spawn(0, programs::forker(3, 200));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(parent), Some(3));
    let parent_pid = sys.pids[parent];
    let mut child_statuses: Vec<u64> = (0..3)
        .filter_map(|i| {
            let child = auros::bus::proto::derive_child_pid(parent_pid, i);
            sys.world.exit_status(child)
        })
        .collect();
    child_statuses.sort();
    assert_eq!(child_statuses, vec![1000, 1001, 1002]);
}

#[test]
fn time_flows_through_the_process_server() {
    let mut b = SystemBuilder::new(2);
    let i = b.spawn(0, programs::clock_sampler(5_000));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    let delta = sys.exit_of(i).expect("finished");
    assert!(delta > 0, "time advanced between samples");
    assert!(delta < 10_000_000, "and by a sane amount: {delta}");
}

#[test]
fn alarm_delivers_sigalrm() {
    let mut b = SystemBuilder::new(2);
    let i = b.spawn(0, programs::alarm_waiter(20_000));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(i), Some(1), "exactly one alarm fired");
}

#[test]
fn which_selects_across_two_channels() {
    let mut b = SystemBuilder::new(3);
    let sel = b.spawn(0, programs::selector("wa", "wb", 20));
    let _pa = b.spawn(1, programs::producer("wa", 10));
    let _pb = b.spawn(2, programs::producer("wb", 10));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert!(sys.exit_of(sel).is_some());
}

#[test]
fn terminal_echo_session() {
    let mut b = SystemBuilder::new(2);
    b.terminals(1);
    let i = b.spawn(0, programs::tty_session("tty:0", 2));
    b.type_at(VTime(50_000), 0, b"hello\n");
    b.type_at(VTime(90_000), 0, b"world\n");
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(i), Some(12), "twelve bytes echoed");
    let out = sys.terminal_output(0);
    assert_eq!(out, b"hello\nworld\n");
}

#[test]
fn uncaught_sigint_kills_foreground_process() {
    let mut b = SystemBuilder::new(2);
    b.terminals(1);
    // The session program installs no SIGINT handler.
    let i = b.spawn(0, programs::tty_session("tty:0", 100));
    b.type_at(VTime(50_000), 0, b"abc");
    b.type_at(VTime(100_000), 0, &[0x03]);
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(i), Some(u64::MAX), "killed, not exited");
}

#[test]
fn raw_disk_round_trip() {
    let mut b = SystemBuilder::new(2);
    b.raw_disks(1);
    let w = b.spawn(0, programs::file_writer("raw:0", 4, 256));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(w), Some(4 * 256));
}

#[test]
fn all_backup_modes_run_fault_free() {
    for mode in [BackupMode::Quarterback, BackupMode::Halfback, BackupMode::Fullback] {
        let mut b = SystemBuilder::new(3);
        let i = b.spawn_with_mode(0, programs::compute_loop(30, 4), mode);
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "{mode:?} completes");
        assert!(sys.exit_of(i).is_some());
    }
}

#[test]
fn sync_cadence_is_tunable() {
    let run = |max_reads: u64| {
        let mut b = SystemBuilder::new(2);
        b.config_mut().sync_max_reads = max_reads;
        b.spawn(0, programs::pingpong("t", 60, true));
        b.spawn(1, programs::pingpong("t", 60, false));
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.world.stats.total_syncs()
    };
    let frequent = run(4);
    let rare = run(64);
    assert!(frequent > rare, "a lower read threshold must sync more often ({frequent} vs {rare})");
}

#[test]
fn no_ft_baseline_sends_fewer_messages() {
    let run = |ft: bool| {
        let mut b = SystemBuilder::new(2);
        if !ft {
            b.without_fault_tolerance();
        }
        b.spawn(0, programs::pingpong("t", 40, true));
        b.spawn(1, programs::pingpong("t", 40, false));
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.world.stats.bus_bytes
    };
    let with_ft = run(true);
    let without = run(false);
    assert!(with_ft > without, "three-way delivery carries more bytes ({with_ft} vs {without})");
}

#[test]
fn executive_absorbs_backup_copies() {
    // §8.1: the two backup copies are handled by the executive
    // processor; work processors are unaffected by their delivery.
    let run = |ft: bool| {
        let mut b = SystemBuilder::new(2);
        if !ft {
            b.without_fault_tolerance();
        }
        b.spawn(0, programs::pingpong("t", 50, true));
        b.spawn(1, programs::pingpong("t", 50, false));
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        let s = &sys.world.stats;
        (s.total_exec_busy().as_ticks(), s.total_work_busy().as_ticks())
    };
    let (exec_ft, _) = run(true);
    let (exec_no, _) = run(false);
    assert!(exec_ft > exec_no, "backup copies cost executive time");
}

#[test]
fn kill_between_processes_delivers_signal() {
    use auros_vm::inst::regs::*;
    use auros_vm::{Program, ProgramBuilder, Sys};
    // §7.5.2: `kill` travels as a message to the process server, which
    // forwards the signal on the target's signal channel. The target
    // counts two SIGUSR1s and exits with the count.
    fn usr1_counter() -> Program {
        let mut p = ProgramBuilder::new("usr1_counter");
        let start = p.new_label();
        p.jmp(start);
        let handler = p.pos();
        p.addi(R11, R11, 1);
        p.trap(Sys::SigReturn);
        p.bind(start);
        p.li(R1, auros::bus::Sig::USR1.0 as u64);
        p.li(R2, handler as u64);
        p.trap(Sys::SigHandler);
        let spin = p.here();
        p.compute(100);
        p.li(R7, 2);
        p.ltu(R8, R11, R7);
        p.jnz(R8, spin);
        p.mov(R1, R11);
        p.trap(Sys::Exit);
        p.build()
    }
    // Pids are derivation-stable: discover the victim's pid from a dry
    // build with the same spawn order, then embed it in the killer.
    let victim_pid = {
        let mut dry = SystemBuilder::new(3);
        let v = dry.spawn(0, usr1_counter());
        dry.build().pids[v]
    };
    let mut k = ProgramBuilder::new("killer");
    k.compute(20_000);
    for _ in 0..2 {
        k.li(R1, victim_pid.0);
        k.li(R2, auros::bus::Sig::USR1.0 as u64);
        k.trap(Sys::Kill);
        k.compute(20_000);
    }
    k.li(R1, 0);
    k.trap(Sys::Exit);

    let mut b = SystemBuilder::new(3);
    let v = b.spawn(0, usr1_counter());
    let _killer = b.spawn(1, k.build());
    let mut sys = b.build();
    assert_eq!(sys.pids[v], victim_pid, "pids are derivation-stable");
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(v), Some(2), "two signals handled");
}

#[test]
fn ignored_signals_are_consumed_and_counted() {
    use auros_vm::inst::regs::*;
    use auros_vm::{ProgramBuilder, Sys};
    // A process that IGNORES SIGINT (handler = 0) survives a control-C
    // and still reads its terminal input afterwards (§7.5.2: "Any signal
    // which is ignored is removed from the queue and is counted as a
    // 'read since sync'").
    let mut b = SystemBuilder::new(2);
    b.terminals(1);
    let mut p = ProgramBuilder::new("ignorer");
    p.li(R1, auros::bus::Sig::INT.0 as u64);
    p.li(R2, 0); // Ignore.
    p.trap(Sys::SigHandler);
    // Open the tty and read one chunk.
    p.blit(256, b"tty:0", R1, R2);
    p.li(R1, 256);
    p.li(R2, 5);
    p.trap(Sys::Open);
    p.mov(R4, R0);
    p.mov(R1, R4);
    p.li(R2, 4096);
    p.li(R3, 64);
    p.trap(Sys::Read);
    p.mov(R1, R0);
    p.trap(Sys::Exit);
    let i = b.spawn(0, p.build());
    b.type_at(VTime(40_000), 0, &[0x03]); // Ignored.
    b.type_at(VTime(80_000), 0, b"data\n");
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(i), Some(5), "survived the control-C and read the line");
}

#[test]
fn close_makes_peer_reads_fail_after_drain() {
    use auros_vm::inst::regs::*;
    use auros_vm::{ProgramBuilder, Sys};
    // Writer sends one value then closes; the reader drains it and its
    // next read fails (peer gone + empty queue) instead of blocking.
    let mut w = ProgramBuilder::new("closer");
    w.blit(256, b"cl", R1, R2);
    w.li(R1, 256);
    w.li(R2, 2);
    w.trap(Sys::Open);
    w.mov(R4, R0);
    w.li(R6, 777);
    w.li(R7, 1024);
    w.store_at(R6, R7, 0);
    w.mov(R1, R4);
    w.li(R2, 1024);
    w.li(R3, 8);
    w.trap(Sys::Write);
    w.mov(R1, R4);
    w.trap(Sys::Close);
    w.li(R1, 1);
    w.trap(Sys::Exit);

    let mut r = ProgramBuilder::new("drainer");
    r.blit(256, b"cl", R1, R2);
    r.li(R1, 256);
    r.li(R2, 2);
    r.trap(Sys::Open);
    r.mov(R4, R0);
    r.mov(R1, R4);
    r.li(R2, 1024);
    r.li(R3, 8);
    r.trap(Sys::Read); // Gets 777.
    r.li(R7, 1024);
    r.load(R10, R7, 0);
    r.mov(R1, R4);
    r.li(R2, 1024);
    r.li(R3, 8);
    r.trap(Sys::Read); // Fails: peer closed, queue empty.
    let failed = r.new_label();
    r.li(R7, u64::MAX);
    r.eq(R8, R0, R7);
    r.jnz(R8, failed);
    r.li(R1, 0); // Unexpected success.
    r.trap(Sys::Exit);
    r.bind(failed);
    r.mov(R1, R10);
    r.trap(Sys::Exit);

    let mut b = SystemBuilder::new(2);
    let _writer = b.spawn(0, w.build());
    let reader = b.spawn(1, r.build());
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(reader), Some(777), "drained the value, then saw EOF");
}

#[test]
fn seek_replays_file_region() {
    use auros_vm::inst::regs::*;
    use auros_vm::{ProgramBuilder, Sys};
    // Write 16 bytes, seek back to offset 8, read the tail.
    let mut p = ProgramBuilder::new("seeker");
    p.blit(256, b"/sk", R1, R2);
    p.li(R1, 256);
    p.li(R2, 3);
    p.trap(Sys::Open);
    p.mov(R4, R0);
    p.li(R6, 0x1111_2222_3333_4444);
    p.li(R7, 1024);
    p.store_at(R6, R7, 0);
    p.li(R6, 0x5555_6666_7777_8888);
    p.store_at(R6, R7, 8);
    p.mov(R1, R4);
    p.li(R2, 1024);
    p.li(R3, 16);
    p.trap(Sys::Write);
    p.mov(R1, R4);
    p.li(R2, 8);
    p.trap(Sys::Seek);
    p.mov(R1, R4);
    p.li(R2, 2048);
    p.li(R3, 8);
    p.trap(Sys::Read);
    p.li(R7, 2048);
    p.load(R1, R7, 0);
    p.trap(Sys::Exit);
    let mut b = SystemBuilder::new(2);
    let i = b.spawn(0, p.build());
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(i), Some(0x5555_6666_7777_8888));
}

#[test]
fn dual_bus_failover_is_transparent() {
    // §7.1: a dual high-speed intercluster bus. Failing bus A mid-run
    // fails traffic over to bus B with no visible effect.
    let run = |fail_bus: bool| {
        let mut b = SystemBuilder::new(2);
        b.spawn(0, programs::pingpong("db", 80, true));
        b.spawn(1, programs::pingpong("db", 80, false));
        let mut sys = b.build();
        if fail_bus {
            sys.run_until(VTime(5_000));
            assert!(sys.world.bus.fail(auros::bus::BusKind::A), "bus B takes over");
        }
        assert!(sys.run(DEADLINE));
        let b_frames = sys.world.bus.counters(auros::bus::BusKind::B).frames;
        (sys.digest(), b_frames)
    };
    let (clean, b_clean) = run(false);
    let (failed, b_failed) = run(true);
    assert_eq!(clean, failed, "failover is invisible");
    assert_eq!(b_clean, 0, "bus B idle in the clean run");
    assert!(b_failed > 0, "bus B carried traffic after the failover");
}
