//! Flight-recorder acceptance: the typed event stream, the divergence
//! differ, the bounded ring, and crash-window capture.
//!
//! The differ turns "two runs disagree" from a pair of opaque
//! fingerprints into *the first divergent event* — virtual time, cluster,
//! kind — plus the matching events just before it. These tests pin that
//! contract, then use it the way a debugging session would: crash a
//! cluster in the middle of an in-progress sync (and again with frames
//! held behind a link-sequence gap) and check the faulted run's stream is
//! event-identical to the fault-free twin's right up to the crash point.

use auros::sim::{first_divergence, TraceCategory, TraceEvent, TraceKind, TraceLog};
use auros::{programs, SystemBuilder, VTime};
use proptest::prelude::*;

const DEADLINE: VTime = VTime(400_000_000);

/// Pingpong pair with full capture and an optional crash.
fn traced_run(crash: Option<(u64, u16)>) -> (auros::System, Vec<TraceEvent>) {
    let mut b = SystemBuilder::new(3);
    b.spawn(0, programs::pingpong("fr", 120, true));
    b.spawn(1, programs::pingpong("fr", 120, false));
    if let Some((at, victim)) = crash {
        b.crash_at(VTime(at), victim);
    }
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    assert!(sys.run(DEADLINE), "workload must complete");
    let events = sys.world.trace.snapshot();
    (sys, events)
}

#[test]
fn identical_runs_produce_identical_streams() {
    let (_, a) = traced_run(Some((9_000, 0)));
    let (_, b) = traced_run(Some((9_000, 0)));
    assert!(
        first_divergence(&a, &b).is_none(),
        "same inputs must give the same event stream ({} vs {} events)",
        a.len(),
        b.len()
    );
}

#[test]
fn differ_locates_first_divergent_event_with_vt_cluster_and_kind() {
    // Two crash times: the streams agree until the earlier crash fires.
    let (_, a) = traced_run(Some((8_000, 0)));
    let (_, b) = traced_run(Some((16_000, 0)));
    let div = first_divergence(&a, &b).expect("different crash times must diverge");
    // The first difference IS the earlier crash: the differ hands back
    // its virtual time, cluster, and typed kind directly.
    assert_eq!(div.at(), VTime(8_000), "divergence located at the earlier crash instant");
    let left = div.left.expect("left stream has the crash event");
    assert_eq!(left.kind, TraceKind::ClusterCrashed);
    assert_eq!(left.cluster(), Some(0));
    assert_eq!(left.category(), TraceCategory::Crash);
    // Context events precede the divergence and match on both sides.
    assert!(!div.context.is_empty(), "context accompanies the report");
    for e in &div.context {
        assert!(e.at <= div.at());
    }
}

/// Finds `(crash_at, victim)` inside an in-progress sync: after some
/// primary's `SyncStart` but strictly before its record is applied at
/// the backup.
fn sync_window(events: &[TraceEvent]) -> Option<(u64, u16)> {
    for e in events {
        let TraceKind::SyncStart { pid, gen, .. } = e.kind else { continue };
        if e.at.ticks() < 3_000 {
            continue; // skip boot-time syncs; crash handling needs a warm system
        }
        let applied = events.iter().find(|f| {
            matches!(f.kind, TraceKind::SyncApplied { pid: p, gen: g, .. } if p == pid && g == gen)
                && f.at > e.at
        })?;
        if applied.at.ticks() > e.at.ticks() + 1 {
            let mid = e.at.ticks() + (applied.at.ticks() - e.at.ticks()) / 2;
            return Some((mid, e.cluster().expect("syncs happen in a cluster")));
        }
    }
    None
}

#[test]
fn crash_during_in_progress_sync_matches_clean_up_to_crash_point() {
    let (mut clean_sys, clean) = traced_run(None);
    let (crash_at, victim) =
        sync_window(&clean).expect("the workload must sync with an observable window");
    let (mut sys, crashed) = traced_run(Some((crash_at, victim)));
    // Transparent outcome (§3.3): the sync in flight at the crash either
    // completed at the backup or is re-done after rollforward.
    assert_eq!(clean_sys.digest(), sys.digest(), "crash mid-sync at {crash_at} on c{victim}");
    // And the differ proves the streams agree event-for-event up to the
    // crash: the first divergent event is the crash itself, not anything
    // before it.
    let div = first_divergence(&clean, &crashed).expect("a crashed run's stream must diverge");
    assert!(
        div.at() >= VTime(crash_at),
        "streams diverge at vt {} — before the crash at {crash_at}: {div}",
        div.at()
    );
    assert_eq!(
        div.right.expect("crashed stream continues").kind,
        TraceKind::ClusterCrashed,
        "the first divergent event is the injected crash"
    );
}

/// Finds a crash instant inside a held-frame window: after a `FrameHeld`
/// but strictly before that message's gap closes, so the link layer's
/// hold queue is non-empty when the crash lands.
fn held_window(events: &[TraceEvent]) -> Option<u64> {
    for e in events {
        let TraceKind::FrameHeld { msg } = e.kind else { continue };
        let closed = events.iter().find(|f| {
            matches!(f.kind, TraceKind::GapClosed { msg: m } if m == msg) && f.at > e.at
        })?;
        if closed.at.ticks() > e.at.ticks() + 1 {
            return Some(e.at.ticks() + (closed.at.ticks() - e.at.ticks()) / 2);
        }
    }
    None
}

/// Busy cross-cluster traffic (fullback rendezvous + file writes) with
/// one dropped frame: its retransmission arrives only after the ack
/// timeout, and every successor frame landing in that window is held
/// behind the link-sequence gap. (A mere delay can't do this — the bus
/// serializes transmissions, so nothing overtakes a slow frame.)
fn held_frame_run(crash: Option<(u64, u16)>) -> (auros::System, Vec<TraceEvent>) {
    use auros::BackupMode;
    let mut b = SystemBuilder::new(3);
    // Link sequence numbers are per cluster *pair*, so four concurrent
    // rendezvous flows between c0 and c1 interleave on one link: when a
    // drop sidelines one flow's frame for the ack-timeout window, the
    // other flows' frames keep arriving and pile up behind the gap.
    for i in 0..4 {
        let name = format!("fh{i}");
        b.spawn_with_mode(0, programs::pingpong(&name, 120, true), BackupMode::Fullback);
        b.spawn_with_mode(1, programs::pingpong(&name, 120, false), BackupMode::Fullback);
    }
    b.drop_frame_at(VTime(10_000));
    if let Some((at, victim)) = crash {
        b.crash_at(VTime(at), victim);
    }
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    assert!(sys.run(DEADLINE), "workload must complete");
    let events = sys.world.trace.snapshot();
    (sys, events)
}

#[test]
fn crash_with_held_frames_matches_clean_up_to_crash_point() {
    let (mut clean_sys, clean) = held_frame_run(None);
    let crash_at = held_window(&clean).expect("the drop must open a held-frame window");
    assert!(
        clean
            .iter()
            .any(|e| { matches!(e.kind, TraceKind::FrameHeld { .. }) && e.at.ticks() <= crash_at }),
        "the system enters the crash with a non-empty held-frame queue"
    );
    // Crash the initiators' cluster mid-window: its in-flight and held
    // traffic dies with it, and rollforward must regenerate it all.
    let (mut sys, crashed) = held_frame_run(Some((crash_at, 0)));
    assert_eq!(clean_sys.digest(), sys.digest(), "crash at {crash_at} with frames held");
    let div = first_divergence(&clean, &crashed).expect("a crashed run's stream must diverge");
    assert!(
        div.at() >= VTime(crash_at),
        "streams diverge at vt {} — before the crash at {crash_at}: {div}",
        div.at()
    );
}

// ---- ring-buffer properties (satellite: proptest the flight recorder) --

/// Replays `picks` as an interleaved Sched/Crash event stream into `log`.
fn feed(log: &mut TraceLog, picks: &[u64]) {
    for (i, &p) in picks.iter().enumerate() {
        let at = VTime(10 + i as u64);
        if p % 2 == 0 {
            log.emit(
                at,
                auros::sim::Loc::Cluster((p % 3) as u16),
                TraceKind::Dispatched { pid: p },
            );
        } else {
            log.emit(at, auros::sim::Loc::Cluster((p % 3) as u16), TraceKind::ClusterCrashed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The ring keeps exactly the most recent `cap` events, in emission
    /// order, and reports everything it dropped.
    #[test]
    fn prop_ring_preserves_order_and_capacity(
        cap in 1usize..40,
        picks in proptest::collection::vec(0u64..1000, 0..120),
    ) {
        let mut ring = TraceLog::ring(cap);
        let mut full = TraceLog::capture_all();
        feed(&mut ring, &picks);
        feed(&mut full, &picks);
        prop_assert!(ring.len() <= cap, "ring exceeded capacity");
        prop_assert_eq!(ring.evicted(), picks.len().saturating_sub(cap) as u64);
        let tail: Vec<TraceEvent> =
            full.snapshot().into_iter().skip(picks.len().saturating_sub(cap)).collect();
        prop_assert_eq!(ring.snapshot(), tail, "ring must hold the stream's tail, in order");
    }

    /// Fingerprints cover every *emitted* event: bounding the ring (any
    /// capacity, including smaller than the stream) never changes them.
    #[test]
    fn prop_fingerprints_invariant_to_eviction(
        cap in 1usize..20,
        picks in proptest::collection::vec(0u64..1000, 1..120),
    ) {
        let mut ring = TraceLog::ring(cap);
        let mut full = TraceLog::capture_all();
        feed(&mut ring, &picks);
        feed(&mut full, &picks);
        prop_assert_eq!(ring.fingerprints(), full.fingerprints());
    }

    /// A category's fingerprint depends only on that category's events:
    /// filtering the others out (capturing Sched alone) leaves it
    /// untouched.
    #[test]
    fn prop_fingerprints_invariant_to_filtering(
        picks in proptest::collection::vec(0u64..1000, 1..120),
    ) {
        let mut full = TraceLog::capture_all();
        let mut sched_only = TraceLog::new();
        sched_only.enable(TraceCategory::Sched);
        feed(&mut full, &picks);
        feed(&mut sched_only, &picks);
        prop_assert_eq!(
            sched_only.fingerprint(TraceCategory::Sched),
            full.fingerprint(TraceCategory::Sched)
        );
        prop_assert_eq!(sched_only.fingerprint(TraceCategory::Crash), 0);
    }
}
