//! The application library end to end: traffic-DSL-driven apps held
//! against their executable models, under fault plans that kill every
//! pipeline stage, and the dead-letter conservation oracle proving that
//! quarantine-with-diversion loses nothing and duplicates nothing.

use auros::apps::{AppKind, AppWorkload};
use auros::chaos::{run_sweep, ChaosConfig, Scenario};
use auros::{SystemBuilder, VTime};
use proptest::prelude::*;

const CLUSTERS: u16 = 4;
const DEADLINE: VTime = VTime(5_000_000);

fn build(app: &AppWorkload, faults: impl FnOnce(&mut SystemBuilder)) -> auros::System {
    let mut b = SystemBuilder::new(CLUSTERS);
    app.install(&mut b);
    faults(&mut b);
    b.build()
}

/// Runs `app` under `faults`; asserts completion, the model check, and
/// conservation.
fn run_checked(app: &AppWorkload, faults: impl FnOnce(&mut SystemBuilder)) -> auros::System {
    let mut sys = build(app, faults);
    assert!(sys.run(DEADLINE), "{:?} workload must complete", app.kind);
    let violations = app.check(&mut sys);
    assert!(violations.is_empty(), "{:?} model violations: {violations:?}", app.kind);
    let conservation = app.check_conservation(&mut sys);
    assert!(conservation.is_empty(), "{:?} conservation: {conservation:?}", app.kind);
    sys
}

// ---------------------------------------------------------------------
// Fault-free goldens: every app matches its model exactly.
// ---------------------------------------------------------------------

#[test]
fn kv_fault_free_matches_model() {
    run_checked(&AppWorkload::kv(0xA5), |_| {});
}

#[test]
fn chat_fault_free_matches_model() {
    run_checked(&AppWorkload::chat(0xA5), |_| {});
}

#[test]
fn etl_fault_free_matches_model() {
    let mut sys = run_checked(&AppWorkload::etl(0xA5), |_| {});
    assert_eq!(sys.world.dead_letter_count(), 0);
    let out = sys.file_contents("/etl_out").expect("committed output exists");
    assert!(!out.is_empty() && out.len() % 8 == 0);
}

// ---------------------------------------------------------------------
// No acked write lost / zero staleness across crash plans.
// ---------------------------------------------------------------------

#[test]
fn kv_survives_a_cluster_crash_with_no_acked_write_lost() {
    // Crash a client's home cluster mid-traffic: the promoted client
    // replays, and the durable state + ack ledgers still match the
    // model bit for bit.
    for cluster in [0u16, 2] {
        run_checked(&AppWorkload::kv(0xB7), |b| {
            b.crash_at(VTime(6_500), cluster);
        });
    }
}

#[test]
fn kv_survives_a_poisoned_reply_via_quarantine() {
    // Poison a client's reply stream: quarantine defuses the message in
    // place (no diversion for KV), the reincarnation re-consumes it,
    // and the run still matches the model exactly.
    let sys = run_checked(&AppWorkload::kv(0xB8), |b| {
        b.poison_at(VTime(3_000), 1);
    });
    assert_eq!(sys.world.stats.quarantined_poisons, 1);
    assert_eq!(sys.world.stats.diverted_records, 0, "KV must not divert");
}

#[test]
fn chat_zero_staleness_survives_hub_cluster_crash() {
    run_checked(&AppWorkload::chat(0xB9), |b| {
        b.crash_at(VTime(5_500), 0);
    });
}

#[test]
fn chat_zero_staleness_survives_poisoned_subscriber() {
    let app = AppWorkload::chat(0xBA);
    let subs_at = app.poisonable_spawns()[1];
    let sys = run_checked(&app, |b| {
        b.poison_at(VTime(3_500), subs_at);
    });
    assert_eq!(sys.world.stats.quarantined_poisons, 1);
}

// ---------------------------------------------------------------------
// Dead-letter conservation: kill each ETL stage mid-flight.
// ---------------------------------------------------------------------

#[test]
fn etl_survives_partial_failure_of_each_stage_exactly() {
    // A crashed-and-promoted stage replays exactly: committed output is
    // byte-identical to fault-free, dead letters stay empty.
    let clean = run_checked(&AppWorkload::etl(0xC1), |_| {}).file_contents("/etl_out");
    for stage in 0..3 {
        let mut sys = run_checked(&AppWorkload::etl(0xC1), |b| {
            b.fail_process_at(VTime(5_200), stage);
        });
        assert_eq!(sys.world.dead_letter_count(), 0);
        assert_eq!(
            sys.file_contents("/etl_out"),
            clean,
            "stage {stage} replay must commit identical output"
        );
    }
}

#[test]
fn etl_survives_cluster_crash_of_each_stage_exactly() {
    let clean = run_checked(&AppWorkload::etl(0xC2), |_| {}).file_contents("/etl_out");
    for cluster in 0..3u16 {
        let mut sys = run_checked(&AppWorkload::etl(0xC2), |b| {
            b.crash_at(VTime(6_000), cluster);
        });
        assert_eq!(sys.file_contents("/etl_out"), clean);
    }
}

#[test]
fn etl_diverts_a_poisoned_record_and_conserves_the_stream() {
    // Poison the worker: after three kills the record is quarantined
    // *and diverted* — purged from the saved queues so the pipeline
    // flows around it. The committed output then misses exactly the
    // diverted records, which is what check_conservation (inside
    // run_checked) proves.
    for (stage, label) in [(1usize, "worker"), (2usize, "logger")] {
        let app = AppWorkload::etl(0xC3);
        let mut sys = build(&app, |b| {
            b.poison_at(VTime(3_200), stage);
        });
        assert!(sys.run(DEADLINE), "{label}: diverted pipeline must still complete");
        // The full model no longer matches — the diverted record is
        // *supposed* to be missing — so the conservation oracle is the
        // arbiter here.
        let conservation = app.check_conservation(&mut sys);
        assert!(conservation.is_empty(), "{label}: conservation violated: {conservation:?}");
        let stats = &sys.world.stats;
        assert_eq!(stats.quarantined_poisons, 1, "{label}: poison must be quarantined");
        assert_eq!(stats.diverted_records, 1, "{label}: quarantine must divert");
        let letters = sys.world.dead_letter_records();
        assert_eq!(letters.len(), 1);
        let (_, dl) = letters[0];
        assert!(dl.diverted);
        assert_eq!(dl.victim, sys.pids[stage]);
        // The committed output really is short by exactly one record.
        let out = sys.file_contents("/etl_out").expect("output exists");
        let app = AppWorkload::etl(0xC3);
        let expected = app.trace.total_ops() as usize - 1;
        assert_eq!(out.len() / 8, expected, "{label}: one record diverted out of the stream");
    }
}

// ---------------------------------------------------------------------
// Determinism properties: the DSL and the models are pure.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn same_seed_same_arrival_stream_and_app_digests(seed in 0u64..1_000_000) {
        for kind in [AppKind::KvStore, AppKind::ChatFanout, AppKind::EtlPipeline] {
            let a = AppWorkload::new(kind, seed);
            let b = AppWorkload::new(kind, seed);
            prop_assert_eq!(a.trace.stream_bytes(), b.trace.stream_bytes());
            prop_assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
            let (ma, mb) = (a.model(), b.model());
            prop_assert_eq!(ma.exits, mb.exits);
            prop_assert_eq!(ma.files, mb.files);
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams(seed in 0u64..1_000_000) {
        for kind in [AppKind::KvStore, AppKind::ChatFanout, AppKind::EtlPipeline] {
            let a = AppWorkload::new(kind, seed);
            let b = AppWorkload::new(kind, seed + 1);
            prop_assert_ne!(a.trace.stream_bytes(), b.trace.stream_bytes());
        }
    }
}

// ---------------------------------------------------------------------
// The chaos sweep over every app scenario.
// ---------------------------------------------------------------------

#[test]
fn apps_smoke_chaos_sweep_over_every_scenario() {
    for scenario in [Scenario::KvStore, Scenario::ChatFanout, Scenario::EtlPipeline] {
        let cfg = ChaosConfig { seed: 0xA42_0004, plans: 12, scenario, ..ChaosConfig::default() };
        let report = run_sweep(&cfg);
        assert!(report.failures.is_empty(), "{scenario:?} sweep failed:\n{}", report.summary());
        assert!(report.survived() > 0, "{scenario:?}: no plan survived");
    }
}
