//! The supervision layer end to end: a poison payload crash-loops its
//! consumer until quarantine, restart budgets give up loudly when
//! exhausted, and a correlated zone outage leaves workloads outside the
//! zone untouched.
//!
//! Everything here is digest-checked against a fault-free twin: after
//! quarantine-then-progress the run must be externally
//! indistinguishable, which is the supervision layer's version of the
//! paper's §3.3 transparency promise.

use auros::sim::{TraceKind, TraceLog};
use auros::{programs, BackupMode, SystemBuilder, VTime};

const DEADLINE: VTime = VTime(5_000_000);

/// A rendezvous pair, optionally with a poison armed against the
/// responder (spawn 1).
fn poisoned_pair(poison_at: Option<VTime>) -> auros::System {
    let mut b = SystemBuilder::new(3);
    b.spawn_with_mode(0, programs::pingpong("sup", 40, true), BackupMode::Fullback);
    b.spawn_with_mode(1, programs::pingpong("sup", 40, false), BackupMode::Fullback);
    if let Some(at) = poison_at {
        b.poison_at(at, 1);
    }
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    sys
}

#[test]
fn crash_loop_ends_in_quarantine_then_progress() {
    let mut twin = poisoned_pair(None);
    assert!(twin.run(DEADLINE));
    let mut sys = poisoned_pair(Some(VTime(5_000)));
    assert!(sys.run(DEADLINE), "the quarantined run must complete");
    assert_eq!(sys.digest(), twin.digest(), "quarantine-then-progress is transparent");

    let s = &sys.world.stats;
    assert_eq!(s.injected_poisons, 1);
    assert_eq!(s.poison_kills, 3, "the default poison_after grants three deaths");
    assert_eq!(s.quarantined_poisons, 1);
    assert_eq!(s.supervised_restarts, 3, "every death was followed by a supervised restart");
    assert_eq!(s.give_ups, 0);
    assert!(s.backoff_ticks > 0, "the second and later restarts wait out a backoff");
    assert_eq!(sys.world.armed_poison_count(), 0, "the trigger fired");
    assert_eq!(sys.world.sticky_poison_count(), 0, "no crash loop left open");
    assert_eq!(sys.world.dead_letter_count(), 1, "the poison sits in the ledger");

    let trace = sys.world.trace.snapshot();
    assert!(trace.iter().any(|e| matches!(e.kind, TraceKind::SupervisionPoisonKill { .. })));
    assert!(trace.iter().any(|e| matches!(e.kind, TraceKind::SupervisionRestart { .. })));
    assert!(trace.iter().any(|e| matches!(e.kind, TraceKind::SupervisionQuarantine { .. })));

    let survival = auros::oracle::check_survival(&sys);
    assert!(survival.ok(), "survivors unsound: {:?}", survival.violations);
}

#[test]
fn exhausted_restart_budget_gives_up_loudly() {
    // A budget smaller than the poison's death quota: the supervisor
    // runs out of restarts before quarantine can trigger and must
    // abandon the victim rather than loop forever.
    let mut b = SystemBuilder::new(3);
    b.config_mut().restart_budget = 2;
    b.config_mut().poison_after = 10;
    b.spawn_with_mode(0, programs::pingpong("sup", 40, true), BackupMode::Fullback);
    b.spawn_with_mode(1, programs::pingpong("sup", 40, false), BackupMode::Fullback);
    b.poison_at(VTime(5_000), 1);
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();

    assert!(!sys.run(VTime(600_000)), "an abandoned process cannot complete its rendezvous");
    let s = &sys.world.stats;
    assert_eq!(s.give_ups, 1, "exactly one victim was abandoned");
    assert_eq!(s.supervised_restarts, 2, "the whole budget was spent first");
    assert_eq!(s.quarantined_poisons, 0, "quarantine never triggered");
    assert_eq!(sys.world.sticky_poison_count(), 1, "the poison outlives the give-up");
    let trace = sys.world.trace.snapshot();
    assert!(trace.iter().any(|e| matches!(e.kind, TraceKind::SupervisionGiveUp { .. })));
}

#[test]
fn workload_outside_a_dead_zone_recovers() {
    // Six clusters: servers live on the edge zones (pager/fs in {0, 1},
    // the process server in {4, 5}); zone 1 = {2, 3} hosts nothing the
    // workload needs, so its correlated loss must be absorbed.
    let build = |outage: bool| {
        let mut b = SystemBuilder::new(6);
        b.spawn_with_mode(0, programs::pingpong("zone", 30, true), BackupMode::Fullback);
        b.spawn_with_mode(4, programs::pingpong("zone", 30, false), BackupMode::Fullback);
        if outage {
            b.zone_outage_at(VTime(10_000), 1);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE), "workload outside the zone completes");
        sys
    };
    let mut twin = build(false);
    let mut sys = build(true);
    assert_eq!(sys.digest(), twin.digest(), "the outage is invisible outside its zone");
    assert!(!sys.world.clusters[2].alive, "zone member 2 is down");
    assert!(!sys.world.clusters[3].alive, "zone member 3 is down");
    let survival = auros::oracle::check_survival(&sys);
    assert!(survival.ok(), "survivors unsound: {:?}", survival.violations);
}
