//! Property tests of the paper's core invariant: for ANY workload and
//! ANY single-crash fault plan, the run's externally visible record
//! equals the fault-free run's (§3.3, §6).

use auros::{programs, BackupMode, RunDigest, SystemBuilder, VTime};
use proptest::prelude::*;

const DEADLINE: VTime = VTime(400_000_000);

/// A randomly composed workload, as data (so it can shrink).
#[derive(Debug, Clone)]
enum Job {
    PingPong { rounds: u64 },
    Stream { count: u64 },
    Bank { tx: u64, accounts: u64, seed: u64 },
    MultiBank { tx: u64, seed: u64 },
    Compute { iters: u64, pages: u64 },
    File { chunks: u64 },
}

impl Job {
    fn spawn(&self, idx: usize, b: &mut SystemBuilder, clusters: u16) {
        let c0 = (idx as u16 * 2) % clusters;
        let c1 = (c0 + 1) % clusters;
        match self {
            Job::PingPong { rounds } => {
                let name = format!("pp{idx}");
                b.spawn(c0, programs::pingpong(&name, *rounds, true));
                b.spawn(c1, programs::pingpong(&name, *rounds, false));
            }
            Job::Stream { count } => {
                let name = format!("st{idx}");
                b.spawn(c0, programs::producer(&name, *count));
                b.spawn(c1, programs::consumer(&name, *count));
            }
            Job::Bank { tx, accounts, seed } => {
                let name = format!("bk{idx}");
                b.spawn(c0, programs::bank_server(&name, *tx));
                b.spawn(c1, programs::bank_client(&name, *tx, *accounts, *seed));
            }
            Job::MultiBank { tx, seed } => {
                // Disjoint account ranges: the bank's checksum must not
                // depend on the serving order across clients, which is
                // environmental (recovery preserves per-channel replay
                // exactness, not cross-channel arrival timing).
                let name = format!("mb{idx}-");
                b.spawn(c0, programs::bank_server_multi(&name, 2, 2 * tx));
                b.spawn(c1, programs::bank_client_at(&format!("{name}0"), *tx, 8, 0, *seed));
                b.spawn(
                    (c1 + 1) % clusters,
                    programs::bank_client_at(&format!("{name}1"), *tx, 8, 8, seed + 1),
                );
            }
            Job::Compute { iters, pages } => {
                b.spawn(c0, programs::compute_loop(*iters, *pages));
            }
            Job::File { chunks } => {
                let path = format!("/f{idx}");
                b.spawn(c0, programs::file_writer(&path, *chunks, 128));
            }
        }
    }
}

fn job_strategy() -> impl Strategy<Value = Job> {
    prop_oneof![
        (5u64..60).prop_map(|rounds| Job::PingPong { rounds }),
        (5u64..80).prop_map(|count| Job::Stream { count }),
        (4u64..48, prop_oneof![Just(8u64), Just(16)], 0u64..1000)
            .prop_map(|(tx, accounts, seed)| Job::Bank { tx, accounts, seed }),
        (8u64..60, 0u64..1000).prop_map(|(tx, seed)| Job::MultiBank { tx, seed }),
        (5u64..40, 1u64..6).prop_map(|(iters, pages)| Job::Compute { iters, pages }),
        (1u64..6).prop_map(|chunks| Job::File { chunks }),
    ]
}

fn run(
    jobs: &[Job],
    clusters: u16,
    mode: BackupMode,
    crash: Option<(u64, u16)>,
) -> (bool, RunDigest) {
    let mut b = SystemBuilder::new(clusters);
    b.default_mode(mode);
    for (i, j) in jobs.iter().enumerate() {
        j.spawn(i, &mut b, clusters);
    }
    if let Some((at, victim)) = crash {
        b.crash_at(VTime(at), victim);
    }
    let mut sys = b.build();
    let done = sys.run(DEADLINE);
    (done, sys.digest())
}

/// Asserts every cluster's per-owner routing index agrees with a full
/// recomputation from the maps, and that the indexed `ends_of` /
/// `backup_ends_of` answers match a brute-force scan, in the same order.
fn assert_owner_index_consistent(sys: &auros::System) {
    use std::collections::BTreeSet;
    for (ci, c) in sys.world.clusters.iter().enumerate() {
        c.routing
            .verify_owner_index()
            .unwrap_or_else(|e| panic!("cluster {ci} owner index diverged: {e}"));
        let owners: BTreeSet<_> = c
            .routing
            .primary_iter()
            .map(|(_, e)| e.owner)
            .chain(c.routing.backup_iter().map(|(_, e)| e.owner))
            .collect();
        for pid in owners {
            let scan: Vec<_> = c
                .routing
                .primary_iter()
                .filter(|(_, e)| e.owner == pid)
                .map(|(end, _)| *end)
                .collect();
            assert_eq!(c.routing.ends_of(pid), scan, "cluster {ci}: ends_of({pid:?})");
            let scan: Vec<_> = c
                .routing
                .backup_iter()
                .filter(|(_, e)| e.owner == pid)
                .map(|(end, _)| *end)
                .collect();
            assert_eq!(
                c.routing.backup_ends_of(pid),
                scan,
                "cluster {ci}: backup_ends_of({pid:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Identical inputs give bit-identical outcomes (determinism of the
    /// whole simulation).
    #[test]
    fn prop_runs_are_reproducible(
        jobs in proptest::collection::vec(job_strategy(), 1..4),
        clusters in 2u16..5,
    ) {
        let a = run(&jobs, clusters, BackupMode::Quarterback, None);
        let b = run(&jobs, clusters, BackupMode::Quarterback, None);
        prop_assert!(a.0, "workload must complete");
        prop_assert_eq!(a.1, b.1);
    }

    /// §3.3/§6: any single crash is externally invisible.
    #[test]
    fn prop_single_crash_is_transparent(
        jobs in proptest::collection::vec(job_strategy(), 1..4),
        crash_at in 2_000u64..40_000,
        victim in 0u16..3,
    ) {
        let clusters = 3;
        let clean = run(&jobs, clusters, BackupMode::Quarterback, None);
        prop_assert!(clean.0, "fault-free run must complete");
        let crashed = run(&jobs, clusters, BackupMode::Quarterback, Some((crash_at, victim)));
        prop_assert!(crashed.0, "crashed run must complete");
        prop_assert_eq!(clean.1, crashed.1);
    }

    /// Sequential failures with restorations in between (each failure
    /// single at a time, per §3.1), under halfback protection: the whole
    /// fault *plan* is randomized.
    #[test]
    fn prop_sequential_faults_with_restores_are_transparent(
        jobs in proptest::collection::vec(job_strategy(), 1..3),
        first_crash in 4_000u64..20_000,
        gap in 30_000u64..60_000,
        victims in proptest::collection::vec(0u16..3, 1..3),
    ) {
        let clusters = 3;
        let clean = run(&jobs, clusters, BackupMode::Halfback, None);
        prop_assert!(clean.0, "fault-free run must complete");
        let mut b = SystemBuilder::new(clusters);
        b.default_mode(BackupMode::Halfback);
        for (i, j) in jobs.iter().enumerate() {
            j.spawn(i, &mut b, clusters);
        }
        let mut t = first_crash;
        for v in &victims {
            b.crash_at(VTime(t), *v);
            b.restore_at(VTime(t + gap), *v);
            t += 2 * gap; // The next failure comes well after restoration.
        }
        let mut sys = b.build();
        prop_assert!(sys.run(DEADLINE), "faulted run must complete");
        prop_assert_eq!(clean.1, sys.digest());
    }

    /// The routing tables' per-owner index never diverges from the maps,
    /// even while a crash is moving channels between clusters — checked
    /// mid-run (during promotion/orphaning) and at the end — and the run
    /// with the index produces a trace bit-identical to a repeat run.
    #[test]
    fn prop_owner_index_matches_scan_across_crashes(
        jobs in proptest::collection::vec(job_strategy(), 1..4),
        crash_at in 2_000u64..40_000,
        victim in 0u16..3,
    ) {
        let clusters = 3;
        let build = || {
            let mut b = SystemBuilder::new(clusters);
            b.default_mode(BackupMode::Quarterback);
            for (i, j) in jobs.iter().enumerate() {
                j.spawn(i, &mut b, clusters);
            }
            b.crash_at(VTime(crash_at), victim);
            b.build()
        };
        let mut sys = build();
        // Step through the crash window, checking the index while
        // channels are mid-move (promotions, orphans, rebirths).
        for step in 0..8u64 {
            sys.run_until(VTime(crash_at + step * 10_000));
            assert_owner_index_consistent(&sys);
        }
        prop_assert!(sys.run(DEADLINE), "crashed run must complete");
        assert_owner_index_consistent(&sys);
        // Identical traces: the index is an accelerator, not a semantic
        // input — a repeat run must be bit-identical.
        let mut again = build();
        prop_assert!(again.run(DEADLINE));
        prop_assert_eq!(sys.digest(), again.digest());
    }

    /// Determinism, observed from *inside*: a repeat run's flight-recorder
    /// stream is event-for-event identical, not merely digest-equal. On
    /// failure the differ names the first divergent event (vt, cluster,
    /// kind) instead of two useless fingerprints.
    #[test]
    fn prop_repeat_runs_have_identical_event_streams(
        jobs in proptest::collection::vec(job_strategy(), 1..3),
        crash_at in 2_000u64..30_000,
        victim in 0u16..3,
    ) {
        let snapshot = || {
            let mut b = SystemBuilder::new(3);
            b.default_mode(BackupMode::Quarterback);
            for (i, j) in jobs.iter().enumerate() {
                j.spawn(i, &mut b, 3);
            }
            b.crash_at(VTime(crash_at), victim);
            let mut sys = b.build();
            sys.world.trace = auros::sim::TraceLog::capture_all();
            assert!(sys.run(DEADLINE), "run must complete");
            let t = &sys.world.trace;
            (t.snapshot(), t.len(), t.evicted(), t.fingerprints())
        };
        let (a, b) = (snapshot(), snapshot());
        // Stream *identity*, not merely prefix equality: equal totals and
        // equal per-category fingerprints rule out one stream silently
        // truncating where the other kept going.
        prop_assert_eq!(a.1, b.1, "total event counts differ");
        prop_assert_eq!(a.2, b.2, "evicted counts differ");
        prop_assert_eq!(a.3, b.3, "per-category fingerprints differ");
        if let Some(div) = auros::sim::first_divergence(&a.0, &b.0) {
            prop_assert!(false, "repeat run diverged: {div}");
        }
    }

    /// Supervised restarts are deterministic: a poisoned run's
    /// flight-recorder stream — including every backoff delay the
    /// supervisor grants — is event-for-event identical across repeat
    /// runs, and the quarantined run still matches the fault-free twin's
    /// digest.
    #[test]
    fn prop_supervised_backoff_is_deterministic(
        rounds in 10u64..60,
        poison_at in 2_000u64..6_000,
        victim in 0usize..2,
    ) {
        let build = |poison: bool| {
            let mut b = SystemBuilder::new(3);
            b.default_mode(BackupMode::Fullback);
            b.spawn(0, programs::pingpong("pb", rounds, true));
            b.spawn(1, programs::pingpong("pb", rounds, false));
            if poison {
                b.poison_at(VTime(poison_at), victim);
            }
            let mut sys = b.build();
            sys.world.trace = auros::sim::TraceLog::capture_all();
            sys
        };
        let mut clean = build(false);
        prop_assert!(clean.run(DEADLINE), "fault-free run must complete");
        let mut sys = build(true);
        prop_assert!(sys.run(DEADLINE), "poisoned run must complete");
        // If the poison armed late enough to miss every data read, the
        // property still holds vacuously on the digest; when it struck,
        // quarantine-then-progress must be transparent.
        if sys.world.armed_poison_count() == 0 {
            prop_assert_eq!(clean.digest(), sys.digest());
            prop_assert!(sys.world.stats.supervised_restarts >= 1);
        }
        // The backoff delays are data in the event stream: a repeat run
        // must reproduce each SupervisionRestart tick-for-tick — and the
        // streams must be the same *length* with the same per-category
        // fingerprints, so neither run silently truncates.
        let a = sys.world.trace.snapshot();
        let mut again = build(true);
        prop_assert!(again.run(DEADLINE));
        let b = again.world.trace.snapshot();
        prop_assert_eq!(
            sys.world.trace.len(), again.world.trace.len(),
            "total event counts differ"
        );
        prop_assert_eq!(
            sys.world.trace.fingerprints(), again.world.trace.fingerprints(),
            "per-category fingerprints differ"
        );
        if let Some(div) = auros::sim::first_divergence(&a, &b) {
            prop_assert!(false, "poisoned repeat run diverged: {div}");
        }
    }

    /// The same, under fullback protection on a larger machine.
    #[test]
    fn prop_fullback_crash_is_transparent(
        jobs in proptest::collection::vec(job_strategy(), 1..3),
        crash_at in 2_000u64..30_000,
        victim in 0u16..4,
    ) {
        let clusters = 4;
        let clean = run(&jobs, clusters, BackupMode::Fullback, None);
        prop_assert!(clean.0);
        let crashed = run(&jobs, clusters, BackupMode::Fullback, Some((crash_at, victim)));
        prop_assert!(crashed.0);
        prop_assert_eq!(clean.1, crashed.1);
    }
}
