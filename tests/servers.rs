//! Server-process behaviour through the full system: page accounts,
//! shadow-block crash consistency, terminal commit semantics, process
//! server state.

use auros::fs::DiskPair;
use auros::sim::{TraceKind, TraceLog};
use auros::{programs, SystemBuilder, VTime};

const DEADLINE: VTime = VTime(400_000_000);

#[test]
fn page_accounts_track_sync_generations() {
    let mut b = SystemBuilder::new(2);
    // Lots of page traffic: 16 pages rewritten every iteration.
    b.config_mut().sync_max_fuel = 3_000;
    b.spawn(0, programs::compute_loop(60, 16));
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    assert!(sys.run(DEADLINE));
    let pager = sys.pager_state().expect("pager alive");
    assert!(pager.pageouts > 0, "dirty pages were flushed at syncs");
    assert!(pager.account_syncs > 0, "account commits happened");
    // Typed cross-check: every sync the ledger counts was recorded as a
    // SyncStart event, and at least one flushed dirty pages.
    let starts = sys.world.trace.count_where(|k| matches!(*k, TraceKind::SyncStart { .. })) as u64;
    assert_eq!(starts, sys.world.stats.total_syncs(), "recorder and ledger disagree on syncs");
    assert!(
        sys.world
            .trace
            .count_where(|k| matches!(*k, TraceKind::SyncStart { flushed, .. } if flushed > 0))
            > 0,
        "some sync flushed dirty pages"
    );
}

#[test]
fn backup_account_equals_primary_after_final_sync() {
    let mut b = SystemBuilder::new(2);
    // Short-lived processes may never sync at all (§7.7's deferral);
    // force a tight cadence so flushes happen.
    b.config_mut().sync_max_fuel = 2_000;
    b.spawn(0, programs::compute_loop(40, 6));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    // After exit the account is dropped; inspect totals instead.
    let pager = sys.pager_state().expect("pager alive");
    assert!(pager.pageouts >= 6, "at least one flush of each page");
}

#[test]
fn shadow_blocks_preserve_old_state_until_sync() {
    let mut b = SystemBuilder::new(2);
    // Enough writes to cross the server's flush cadence (16 writes).
    let w = b.spawn(0, programs::file_writer("/shadow", 20, 256));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(w), Some(5120));
    let (commits, _dirty) =
        sys.with_fs(|_, disk| (disk.commits, disk.dirty_blocks())).expect("fs alive");
    assert!(commits > 0, "cache flushes committed the disk");
}

#[test]
fn fileserver_crash_mid_stream_preserves_consistency() {
    // Deterministic replay after an fs crash must leave the same bytes.
    let run = |crash: bool| {
        let mut b = SystemBuilder::new(3);
        let _w = b.spawn(2, programs::file_writer("/c", 20, 128));
        if crash {
            b.crash_at(VTime(12_000), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.file_contents("/c").expect("file exists")
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn disk_revert_discards_uncommitted_writes_on_promotion() {
    let mut b = SystemBuilder::new(3);
    b.spawn(2, programs::file_writer("/r", 20, 128));
    b.crash_at(VTime(12_000), 0);
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    assert!(sys.run(DEADLINE));
    let reverts = sys.with_fs(|_, disk| disk.reverts).expect("fs alive");
    assert_eq!(reverts, 1, "the promoted file server reverted the overlay");
    // The revert must come from the §7.10.1 path: the recorder saw the
    // fs cluster's crash detected and the fs backup promoted.
    let fs_pid = sys.fs_pid.0;
    assert!(
        sys.world.trace.count_where(|k| matches!(*k, TraceKind::CrashDetected { dead: 0 })) > 0,
        "crash of the fs cluster was detected"
    );
    assert!(
        sys.world
            .trace
            .count_where(|k| matches!(*k, TraceKind::PromotingBackup { pid, .. } if pid == fs_pid))
            > 0,
        "the file server's backup was promoted"
    );
}

#[test]
fn terminal_commits_follow_tty_syncs() {
    let mut b = SystemBuilder::new(2);
    b.terminals(1);
    let i = b.spawn(0, programs::tty_session("tty:0", 1));
    b.type_at(VTime(30_000), 0, b"only line\n");
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(i), Some(10));
    assert_eq!(sys.terminal_output(0), b"only line\n");
}

#[test]
fn two_terminals_are_independent() {
    let mut b = SystemBuilder::new(3);
    b.terminals(2);
    let a = b.spawn(2, programs::tty_session("tty:0", 1));
    let c = b.spawn(2, programs::tty_session("tty:1", 1));
    b.type_at(VTime(30_000), 0, b"to-zero\n");
    b.type_at(VTime(40_000), 1, b"to-one\n");
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(a), Some(8));
    assert_eq!(sys.exit_of(c), Some(7));
    assert_eq!(sys.terminal_output(0), b"to-zero\n");
    assert_eq!(sys.terminal_output(1), b"to-one\n");
}

#[test]
fn pager_copy_on_sync_shares_pages() {
    // Between syncs, rewritten pages double; after each sync the backup
    // account shares every page with the primary (§7.8).
    let mut b = SystemBuilder::new(2);
    b.config_mut().sync_max_fuel = 2_000;
    b.spawn(0, programs::compute_loop(100, 8));
    let mut sys = b.build();
    // Run partway and inspect the live account.
    sys.run_until(VTime(40_000));
    let pid = sys.pids[0];
    let pager = sys.pager_state().expect("pager alive");
    let primary = pager.primary_pages(pid);
    if !primary.is_empty() {
        // The backup account never holds pages the primary lacks.
        for page in pager.backup_pages(pid) {
            assert!(primary.contains(&page));
        }
    }
    assert!(sys.run(DEADLINE));
}

#[test]
fn raw_server_survives_its_cluster_crash() {
    let run = |crash: bool| {
        let mut b = SystemBuilder::new(3);
        b.raw_disks(1); // raw server in cluster 0, backup in 1
        let _w = b.spawn(2, programs::file_writer("raw:0", 12, 256));
        if crash {
            b.crash_at(VTime(12_000), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        sys.exit_of(0)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn mirrored_disk_survives_single_media_failure() {
    let mut b = SystemBuilder::new(2);
    let w = b.spawn(0, programs::file_writer("/m", 6, 256));
    let mut sys = b.build();
    // Fail one mirror before the workload runs.
    let disk_idx = sys.fs_device;
    sys.world.devices[disk_idx]
        .as_any_mut()
        .downcast_mut::<DiskPair>()
        .expect("disk pair")
        .fail_mirror(false);
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(w), Some(6 * 256));
    let b_reads = sys.with_fs(|_, d| d.b.reads).expect("fs alive");
    assert!(b_reads > 0, "reads failed over to the healthy mirror");
}

#[test]
fn eviction_under_memory_pressure_demand_pages_back() {
    let mut b = SystemBuilder::new(2);
    // 12 table pages + scratch, but only 6 may stay resident.
    b.config_mut().resident_page_limit = Some(6);
    b.config_mut().sync_max_fuel = 4_000;
    let i = b.spawn(0, programs::compute_loop(40, 12));
    let mut sys = b.build();
    sys.world.trace = TraceLog::capture_all();
    assert!(sys.run(DEADLINE), "workload completes under paging pressure");
    let faults: u64 = sys.world.stats.clusters.iter().map(|c| c.page_faults).sum();
    assert!(faults > 0, "evicted pages were demand-faulted back");
    // Typed paging events: evictions were recorded, and every fault the
    // ledger counts reinstalled a page.
    let evicted = sys.world.trace.count_where(|k| matches!(*k, TraceKind::PageEvicted { .. }));
    let installed = sys.world.trace.count_where(|k| matches!(*k, TraceKind::PageInstalled { .. }));
    assert!(evicted > 0, "evictions were recorded");
    assert_eq!(installed as u64, faults, "recorder and ledger disagree on page faults");
    // The checksum must equal the unconstrained run's: paging is
    // transparent to the computation.
    let mut b2 = SystemBuilder::new(2);
    let j = b2.spawn(0, programs::compute_loop(40, 12));
    let mut free = b2.build();
    assert!(free.run(DEADLINE));
    assert_eq!(sys.exit_of(i), free.exit_of(j));
}

#[test]
fn unlink_removes_a_file() {
    let mut b = SystemBuilder::new(2);
    let u = b.spawn(0, programs::file_unlinker("/doomed"));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(u), Some(0), "unlink succeeded");
    assert!(sys.file_contents("/doomed").is_none(), "file is gone");
}

#[test]
fn unlink_of_missing_file_fails() {
    use auros_vm::inst::regs::*;
    use auros_vm::{ProgramBuilder, Sys};
    let mut b = SystemBuilder::new(2);
    let mut p = ProgramBuilder::new("unlink_missing");
    p.blit(256, b"/never-existed", R1, R2);
    p.li(R1, 256);
    p.li(R2, 14);
    p.trap(Sys::Unlink);
    p.mov(R1, R0);
    p.trap(Sys::Exit);
    let u = b.spawn(0, p.build());
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(u), Some(u64::MAX), "unlink of a missing file errors");
}

#[test]
fn directory_listing_reflects_files() {
    let mut b = SystemBuilder::new(2);
    let _w1 = b.spawn(0, programs::file_writer("/logs/a", 1, 64));
    let _w2 = b.spawn(0, programs::file_writer("/logs/b", 1, 64));
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    // A second phase lists the directory.
    let mut b2 = SystemBuilder::new(2);
    b2.spawn(0, programs::file_writer("/logs/a", 1, 64));
    b2.spawn(0, programs::file_writer("/logs/b", 1, 64));
    let lister = b2.spawn(1, programs::dir_lister("/logs/"));
    let mut sys2 = b2.build();
    assert!(sys2.run(DEADLINE));
    // The listing checksum is deterministic and nonzero when both file
    // names made it in before the listing snapshot... the lister races
    // the writers, so just require completion and determinism.
    let first = sys2.exit_of(lister);
    let mut b3 = SystemBuilder::new(2);
    b3.spawn(0, programs::file_writer("/logs/a", 1, 64));
    b3.spawn(0, programs::file_writer("/logs/b", 1, 64));
    let lister3 = b3.spawn(1, programs::dir_lister("/logs/"));
    let mut sys3 = b3.build();
    assert!(sys3.run(DEADLINE));
    assert_eq!(first, sys3.exit_of(lister3), "listing is deterministic");
}

#[test]
fn unlink_survives_fileserver_crash() {
    let run = |crash: Option<u64>| {
        let mut b = SystemBuilder::new(3);
        let u = b.spawn(2, programs::file_unlinker("/ul"));
        let w = b.spawn(1, programs::file_writer("/kept", 4, 128));
        if let Some(at) = crash {
            b.crash_at(VTime(at), 0);
        }
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        let _ = (u, w);
        sys.digest()
    };
    let clean = run(None);
    for at in [5_000, 12_000] {
        assert_eq!(clean, run(Some(at)), "unlink + crash at {at}");
    }
}

#[test]
fn two_lines_of_one_interface_module() {
    // Terminals 0 and 2 both live in cluster 0 (k % n with n=2): one
    // interface module, one tty server, two lines (§7.6's "a tty server
    // in each cluster having terminals").
    let mut b = SystemBuilder::new(2);
    b.terminals(3); // tty:0 -> c0 line0, tty:1 -> c1 line0, tty:2 -> c0 line1
    let s0 = b.spawn(1, programs::tty_session("tty:0", 1));
    let s2 = b.spawn(1, programs::tty_session("tty:2", 1));
    b.type_at(VTime(40_000), 0, b"line zero\n");
    b.type_at(VTime(60_000), 2, b"line two\n");
    let mut sys = b.build();
    assert!(sys.run(DEADLINE));
    assert_eq!(sys.exit_of(s0), Some(10));
    assert_eq!(sys.exit_of(s2), Some(9));
    assert_eq!(sys.terminal_output(0), b"line zero\n");
    assert_eq!(sys.terminal_output(2), b"line two\n");
    // Terminals 0 and 2 share a device; terminal 1 has its own.
    assert_eq!(sys.term_map[0].0, sys.term_map[2].0);
    assert_ne!(sys.term_map[0].0, sys.term_map[1].0);
    // And only two tty servers exist for the three terminals.
    assert_eq!(sys.tty_pids.len(), 2);
}

#[test]
fn shared_tty_server_crash_preserves_both_lines() {
    let run = |crash: bool| {
        let mut b = SystemBuilder::new(3);
        b.terminals(4); // c0: lines 0 (tty:0) and 1 (tty:3); c1: tty:1; c2: tty:2
        let a = b.spawn(2, programs::tty_session("tty:0", 2));
        let c = b.spawn(2, programs::tty_session("tty:3", 2));
        b.type_at(VTime(30_000), 0, b"a1\n");
        b.type_at(VTime(50_000), 3, b"c1\n");
        if crash {
            b.crash_at(VTime(60_000), 0); // kill the shared tty server's home
        }
        b.type_at(VTime(90_000), 0, b"a2\n");
        b.type_at(VTime(110_000), 3, b"c2\n");
        let mut sys = b.build();
        assert!(sys.run(DEADLINE));
        let _ = (a, c);
        (sys.terminal_output(0), sys.terminal_output(3))
    };
    assert_eq!(run(false), run(true), "both lines survive their server's crash");
}
